"""A TURN-style relay server and client (paper §2.2).

"The TURN protocol defines a method of implementing relaying in a relatively
secure fashion" — the two properties that make TURN more than naive
forwarding are reproduced here:

* each client gets its own **relayed transport address** (a real UDP port on
  the relay host), so peers address each other, not the relay service; and
* inbound traffic is only forwarded if the client previously sent toward
  that peer through the relay (**permissions**), mirroring the solicited-
  traffic rule of NAT filtering.

Allocations idle out after ``lifetime`` seconds unless refreshed by any
control traffic from the owner — the same lazy-timer scheme NAT mappings
use.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core import protocol
from repro.core.protocol import TurnAllocate, TurnAllocated, TurnData, TurnSend
from repro.netsim.addresses import Endpoint
from repro.netsim.clock import Timer
from repro.netsim.node import Host
from repro.util.errors import ReproError

DEFAULT_TURN_PORT = 3478
DEFAULT_LIFETIME = 600.0

#: Consecutive unanswered refreshes after which a TurnClient declares its
#: server dead and re-allocates (on the next server if it has fallbacks).
DEFAULT_REFRESH_MISSES = 3


class _Allocation:
    """Server-side state for one client's relayed endpoint."""

    def __init__(self, server: "TurnServer", owner: Endpoint, client_id: int) -> None:
        self.server = server
        self.owner = owner  # the client's (NAT-mapped) control source
        self.client_id = client_id
        self.relay_socket = server._stack.udp.socket(0)
        self.relay_socket.on_datagram = self._inbound
        self.permissions: Dict[Endpoint, bool] = {}
        self.last_activity = server.scheduler.now
        self.bytes_relayed_in = 0
        self.bytes_relayed_out = 0
        self._timer: Optional[Timer] = None
        self._arm()

    @property
    def relay_endpoint(self) -> Endpoint:
        return self.relay_socket.local

    def touch(self) -> None:
        self.last_activity = self.server.scheduler.now

    def send(self, dest: Endpoint, payload: bytes) -> None:
        """Emit *payload* from the relayed endpoint (installs permission)."""
        self.touch()
        self.permissions[dest] = True
        self.bytes_relayed_out += len(payload)
        self.relay_socket.sendto(payload, dest)

    def _inbound(self, payload: bytes, src: Endpoint) -> None:
        if self.server.require_permissions and src not in self.permissions:
            self.server.rejected_inbound += 1
            return
        self.touch()
        self.bytes_relayed_in += len(payload)
        self.server._control.sendto(
            protocol.encode(TurnData(src=src, payload=payload)), self.owner
        )

    def _arm(self) -> None:
        self._timer = self.server.scheduler.call_at(
            self.last_activity + self.server.lifetime, self._check_expiry
        )

    def _check_expiry(self) -> None:
        idle = self.server.scheduler.now - self.last_activity
        if idle + 1e-9 >= self.server.lifetime:
            self.server._expire(self)
            return
        self._arm()

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self.relay_socket.close()


class TurnServer:
    """The relay server: one control socket, one relay socket per client."""

    def __init__(
        self,
        host: Host,
        port: int = DEFAULT_TURN_PORT,
        lifetime: float = DEFAULT_LIFETIME,
        require_permissions: bool = True,
    ) -> None:
        self.host = host
        self.lifetime = lifetime
        self.require_permissions = require_permissions
        self._stack = host.stack  # type: ignore[attr-defined]
        self._control = self._stack.udp.socket(port)
        self._control.on_datagram = self._on_control
        self.port = port
        self.endpoint = Endpoint(host.primary_ip, port)
        self.allocations: Dict[Endpoint, _Allocation] = {}
        self.rejected_inbound = 0
        self.allocations_created = 0
        self.allocations_expired = 0
        self.restarts = 0
        self.stopped = False

    @property
    def scheduler(self):
        return self.host.scheduler

    def restart(self) -> None:
        """Crash/restart: every allocation (and its relay port) is lost.

        The control socket stays bound, so refreshes from existing clients
        are answered — but with *fresh* allocations on *new* relay ports.
        A client that does not notice the relay-endpoint change keeps
        advertising a dead one; see ``TurnClient.on_relocated``.
        """
        self.restarts += 1
        allocations, self.allocations = self.allocations, {}
        for allocation in allocations.values():
            allocation.close()

    def stop(self) -> None:
        """Kill the server: allocations die and the control port unbinds,
        so refreshes fall on a dead endpoint (no answer at all)."""
        if self.stopped:
            return
        self.stopped = True
        allocations, self.allocations = self.allocations, {}
        for allocation in allocations.values():
            allocation.close()
        self._control.close()

    def start(self) -> None:
        """Revive a stopped server (same endpoint, no state)."""
        if not self.stopped:
            return
        self.stopped = False
        self.restarts += 1
        self._control = self._stack.udp.socket(self.port)
        self._control.on_datagram = self._on_control

    def _on_control(self, data: bytes, src: Endpoint) -> None:
        message = protocol.try_decode(data)
        if message is None:
            return
        if isinstance(message, TurnAllocate):
            allocation = self.allocations.get(src)
            if allocation is None:
                allocation = _Allocation(self, src, message.client_id)
                self.allocations[src] = allocation
                self.allocations_created += 1
            allocation.touch()
            self._control.sendto(
                protocol.encode(
                    TurnAllocated(
                        client_id=message.client_id,
                        relay_ep=allocation.relay_endpoint,
                    )
                ),
                src,
            )
        elif isinstance(message, TurnSend):
            allocation = self.allocations.get(src)
            if allocation is not None:
                allocation.send(message.dest, message.payload)

    def _expire(self, allocation: _Allocation) -> None:
        if self.allocations.get(allocation.owner) is allocation:
            del self.allocations[allocation.owner]
            allocation.close()
            self.allocations_expired += 1

    @property
    def total_relayed_bytes(self) -> int:
        return sum(
            a.bytes_relayed_in + a.bytes_relayed_out for a in self.allocations.values()
        )


class TurnClient:
    """Client-side allocation handle.

    Usage::

        turn = TurnClient(host, server_endpoint, client_id=1)
        turn.allocate(lambda relay_ep: ...)
        turn.on_data = lambda src, payload: ...
        turn.send(peer_relay_ep, b"hello")
    """

    def __init__(self, host: Host, server: Endpoint, client_id: int,
                 refresh_interval: Optional[float] = None,
                 fallback_servers: Sequence[Endpoint] = (),
                 dead_after_missed: int = DEFAULT_REFRESH_MISSES) -> None:
        self.host = host
        self.servers: List[Endpoint] = [server, *fallback_servers]
        self.server_index = 0
        self.client_id = client_id
        self._stack = host.stack  # type: ignore[attr-defined]
        self.socket = self._stack.udp.socket(0)
        self.socket.on_datagram = self._on_datagram
        self.relay_endpoint: Optional[Endpoint] = None
        self.on_data: Optional[Callable[[Endpoint, bytes], None]] = None
        #: Fired when a re-allocation came back on a *different* relay
        #: endpoint (server restarted, or we failed over to a fallback):
        #: whoever advertised the old endpoint must re-advertise.
        self.on_relocated: Optional[Callable[[Endpoint], None]] = None
        #: Fired when ``dead_after_missed`` refreshes went unanswered.
        self.on_failure: Optional[Callable[[Exception], None]] = None
        self._on_allocated: Optional[Callable[[Endpoint], None]] = None
        self._refresh_interval = refresh_interval
        self._refresh_timer: Optional[Timer] = None
        self.dead_after_missed = dead_after_missed
        self._refresh_misses = 0
        self.failovers = 0
        self.relocations = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._metrics = getattr(host, "metrics", None)

    @property
    def server(self) -> Endpoint:
        """The TURN server currently in use."""
        return self.servers[self.server_index]

    @property
    def scheduler(self):
        return self.host.scheduler

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def allocate(self, on_allocated: Optional[Callable[[Endpoint], None]] = None) -> None:
        """Request (or refresh) the relayed endpoint."""
        self._on_allocated = on_allocated
        self.socket.sendto(
            protocol.encode(TurnAllocate(client_id=self.client_id)), self.server
        )
        if self._refresh_interval and self._refresh_timer is None:
            self._schedule_refresh()

    def _schedule_refresh(self) -> None:
        self._refresh_timer = self.scheduler.call_later(
            self._refresh_interval, self._refresh
        )

    def _refresh(self) -> None:
        # Refreshing is not fire-and-forget: each TurnAllocate should draw a
        # TurnAllocated back.  Count the ones that did not — a dead server
        # would otherwise be refreshed forever while our allocation is gone.
        self._refresh_misses += 1
        if self._refresh_misses > self.dead_after_missed:
            self._server_dead()
            return
        self.socket.sendto(
            protocol.encode(TurnAllocate(client_id=self.client_id)), self.server
        )
        self._schedule_refresh()

    def _server_dead(self) -> None:
        """Refreshes decayed: rotate to the next server (wrapping — a single
        server is simply re-tried, which covers revives) and re-allocate."""
        self.failovers += 1
        self._count("turn.failovers")
        dead = self.server
        self.server_index = (self.server_index + 1) % len(self.servers)
        self._refresh_misses = 0
        if self.on_failure is not None:
            self.on_failure(
                ReproError(f"TURN server {dead} stopped answering refreshes")
            )
        self.socket.sendto(
            protocol.encode(TurnAllocate(client_id=self.client_id)), self.server
        )
        self._schedule_refresh()

    def send(self, dest: Endpoint, payload: bytes) -> None:
        """Relay *payload* to *dest* (usually a peer's relayed endpoint)."""
        self.bytes_sent += len(payload)
        self.socket.sendto(
            protocol.encode(TurnSend(dest=dest, payload=payload)), self.server
        )

    def close(self) -> None:
        if self._refresh_timer is not None:
            self._refresh_timer.cancel()
        self.socket.close()

    def _on_datagram(self, data: bytes, src: Endpoint) -> None:
        message = protocol.try_decode(data)
        if isinstance(message, TurnAllocated) and message.client_id == self.client_id:
            self._refresh_misses = 0
            moved = (
                self.relay_endpoint is not None
                and self.relay_endpoint != message.relay_ep
            )
            self.relay_endpoint = message.relay_ep
            callback, self._on_allocated = self._on_allocated, None
            if callback is not None:
                callback(message.relay_ep)
            if moved:
                # The server rebuilt our allocation on a new relay port
                # (restart) or we failed over: silently keeping the old
                # advertised endpoint would blackhole every pair session.
                self.relocations += 1
                self._count("turn.relocations")
                if self.on_relocated is not None:
                    self.on_relocated(message.relay_ep)
        elif isinstance(message, TurnData):
            self.bytes_received += len(message.payload)
            if self.on_data is not None:
                self.on_data(message.src, message.payload)


class TurnPairSession:
    """A peer-to-peer channel where both directions traverse TURN relays.

    Each side allocates its own relayed endpoint and sends toward the
    *peer's* relayed endpoint; neither NAT ever sees unsolicited inbound
    traffic, so the channel works across any NAT pair — including
    double-symmetric, where every punching variant fails.  Messages carry
    the usual (sender, receiver, nonce) authentication.
    """

    def __init__(
        self,
        client,
        turn: TurnClient,
        peer_id: int,
        nonce: int,
        peer_relay: Endpoint,
        opener_interval: float = 0.5,
        timeout: float = 10.0,
    ) -> None:
        from repro.core import protocol as _p

        self._p = _p
        self.client = client
        self.turn = turn
        self.peer_id = peer_id
        self.nonce = nonce
        self.peer_relay = peer_relay
        self.established = False
        self.closed = False
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_established: Optional[Callable[["TurnPairSession"], None]] = None
        #: Fired when a resumed session re-establishes (relay moved and the
        #: opener handshake completed again); distinct from on_established,
        #: which fires only for the first establishment.
        self.on_resumed: Optional[Callable[["TurnPairSession"], None]] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.resumes = 0
        self._established_ever = False
        self._opener_interval = opener_interval
        self._timeout = timeout
        self._deadline = client.scheduler.now + timeout
        self._opener_epoch = 0
        self._send_opener(self._opener_epoch)

    @property
    def alive(self) -> bool:
        return self.established and not self.closed

    def _send_opener(self, epoch: int) -> None:
        """Keepalive pings install the TURN permission for the peer's relay
        and double as the establishment handshake."""
        if epoch != self._opener_epoch:
            return  # superseded by a resume()
        if self.closed or self.established:
            return
        if self.client.scheduler.now > self._deadline:
            return
        self.turn.send(
            self.peer_relay,
            self._p.encode(
                self._p.SessionKeepalive(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                )
            ),
        )
        self.client.scheduler.call_later(self._opener_interval, self._send_opener, epoch)

    def send(self, payload: bytes) -> None:
        """Send application data via both relays."""
        if self.closed:
            raise ValueError("send on closed TURN pair session")
        self.bytes_sent += len(payload)
        self.turn.send(
            self.peer_relay,
            self._p.encode(
                self._p.SessionData(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                    payload=payload,
                )
            ),
        )

    def close(self) -> None:
        self.closed = True

    def resume(self, peer_relay: Optional[Endpoint] = None) -> None:
        """Re-run the opener handshake after a relay moved.

        Called with the peer's *new* relay endpoint when it re-advertised
        (its TURN server restarted / failed over), or with none when *our*
        relay moved and the peer needs fresh permissions installed from the
        new endpoint.  The session drops back to not-established until the
        openers cross again; application ``send`` keeps working (toward the
        current ``peer_relay``) throughout.
        """
        if self.closed:
            return
        if peer_relay is not None:
            self.peer_relay = peer_relay
        self.resumes += 1
        self.established = False
        self._deadline = self.client.scheduler.now + self._timeout
        self._opener_epoch += 1
        self._send_opener(self._opener_epoch)

    def _handle(self, message) -> None:
        """A decoded message arrived at our relay from the peer's relay."""
        if (
            message.sender != self.peer_id
            or message.receiver != self.client.client_id
            or message.nonce != self.nonce
        ):
            return
        if not self.established:
            self.established = True
            # Answer once more so the peer establishes too.
            self.turn.send(
                self.peer_relay,
                self._p.encode(
                    self._p.SessionKeepalive(
                        sender=self.client.client_id,
                        receiver=self.peer_id,
                        nonce=self.nonce,
                    )
                ),
            )
            self._last_answer = self.client.scheduler.now
            if not self._established_ever:
                self._established_ever = True
                if self.on_established is not None:
                    self.on_established(self)
            elif self.on_resumed is not None:
                self.on_resumed(self)
        elif isinstance(message, self._p.SessionKeepalive):
            # The peer is (re-)opening while we are already established — it
            # resumed after a relay move and needs an answer to cross with.
            # Suppress echoes we sent within half an opener interval so two
            # established sides do not ping-pong forever.
            now = self.client.scheduler.now
            if now - self._last_answer >= self._opener_interval / 2:
                self._last_answer = now
                self.turn.send(
                    self.peer_relay,
                    self._p.encode(
                        self._p.SessionKeepalive(
                            sender=self.client.client_id,
                            receiver=self.peer_id,
                            nonce=self.nonce,
                        )
                    ),
                )
        if isinstance(message, self._p.SessionData):
            self.bytes_received += len(message.payload)
            if self.on_data is not None:
                self.on_data(message.payload)

    def __repr__(self) -> str:
        return (
            f"TurnPairSession(peer={self.peer_id}, relay={self.peer_relay}, "
            f"established={self.established})"
        )
