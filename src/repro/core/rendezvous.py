"""The rendezvous server S (paper §3.1, §4.2).

S is an ordinary public host.  For every registered client it records two
endpoints: the *private* endpoint the client reports in its registration body
and the *public* endpoint S observes as the packet source (UDP) or connection
remote (TCP).  On a connect request it forwards both endpoints of each peer
to the other, together with a pairing nonce the peers use to authenticate
their punch traffic (§3.4).

The same server also implements the fall-back strategies: relaying (§2.2),
connection reversal (§2.3), and the signalling for sequential TCP hole
punching (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import protocol
from repro.core.protocol import (
    ConnectRequest,
    FrameBuffer,
    Keepalive,
    KeepaliveAck,
    Message,
    PeerEndpoints,
    Register,
    Registered,
    RelayError,
    RelayPayload,
    RendezvousError,
    ReverseConnect,
    ReverseExpect,
    ReverseRequest,
    SeqConnect,
    SeqReady,
    SeqRequest,
    ShardForward,
    ShardForwardReply,
    ShardRedirect,
    TurnExchange,
    TRANSPORT_TCP,
    TRANSPORT_UDP,
)
from repro.core.registry import RegistrationTable, RegistryConfig, ShardRing
from repro.netsim.addresses import Endpoint
from repro.netsim.node import Host
from repro.obs.metrics import MetricsRegistry
from repro.transport.tcp import TcpConnection, TcpState
from repro.util.errors import ProtocolError
from repro.util.rng import SeededRng


@dataclass
class Registration:
    """What S knows about one registered client (§3.1)."""

    client_id: int
    public_ep: Endpoint
    private_ep: Endpoint
    registered_at: float
    last_seen: float
    keepalives: int = 0

    @property
    def behind_nat(self) -> bool:
        """Private and public endpoints differ => a NAT is on the path."""
        return self.public_ep != self.private_ep


class _ControlConnection:
    """Server-side state of one client's TCP control connection."""

    def __init__(self, server: "RendezvousServer", conn: TcpConnection) -> None:
        self.server = server
        self.conn = conn
        self.buffer = FrameBuffer()
        self.client_id: Optional[int] = None
        conn.on_data = self._on_data
        conn.on_close = self._on_close_event
        conn.on_error = lambda _err: self._on_close_event()

    def send(self, message: Message) -> None:
        self.conn.send(protocol.frame(message, self.server.obfuscate))

    def _on_data(self, data: bytes) -> None:
        try:
            messages = self.buffer.feed(data)
        except ProtocolError:
            self.conn.abort()
            return
        for message in messages:
            self.server._dispatch_tcp(message, self)

    def _on_close_event(self) -> None:
        if self.client_id is not None:
            self.server._tcp_conn_closed(self.client_id, self)
        # Complete the teardown from our side so the 4-tuple frees up and the
        # client can reconnect from the same local port (§4.5 re-registration).
        if self.conn.state is not TcpState.CLOSED:
            self.conn.abort()


class RendezvousServer:
    """The well-known server S, serving UDP and TCP on one port.

    Args:
        host: public simulated host to run on (must have a HostStack).
        port: the well-known port (paper examples use 1234).
        obfuscate: set to protect endpoint fields against payload-mangling
            NATs (§5.3); clients must use the same setting.
        registry_config: TTL/LRU eviction policy for the UDP registration
            table (see :class:`~repro.core.registry.RegistryConfig`).  The
            default is inert — no expiry, no bound, no sweep timer — so
            small-scale scenarios behave exactly as before.  TCP
            registrations are governed by their control connection's
            lifetime and stay policy-free.
        shard_ring: when this server is one shard of a pool, the shared
            :class:`~repro.core.registry.ShardRing` (see
            :func:`~repro.core.registry.attach_shard_ring`).  Requests for
            peer ids owned elsewhere draw a :class:`ShardRedirect` (client
            requests) or are forwarded shard-to-shard (connect requests).
            Sharding covers the UDP plane; TCP control connections pin a
            client to whichever server it dialled.
        shard_index: this server's position on the ring.
    """

    def __init__(
        self,
        host: Host,
        port: int = 1234,
        obfuscate: bool = False,
        rng: Optional[SeededRng] = None,
        registry_config: Optional[RegistryConfig] = None,
        shard_ring: Optional[ShardRing] = None,
        shard_index: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.obfuscate = obfuscate
        self._rng = rng or SeededRng(0, f"rendezvous/{host.name}")
        stack = host.stack  # type: ignore[attr-defined]
        self.endpoint = Endpoint(host.primary_ip, port)
        #: The owning network's registry (set on the host by Network.add_node);
        #: standalone hosts get a private one so instrumentation never branches.
        self.metrics: MetricsRegistry = getattr(host, "metrics", None) or MetricsRegistry(
            now_fn=lambda: host.scheduler.now
        )
        self.registry_config = registry_config or RegistryConfig()
        cfg = self.registry_config
        now_fn = lambda: self.host.scheduler.now  # noqa: E731 - tiny closure
        self.udp_clients: RegistrationTable = RegistrationTable(
            now_fn,
            ttl=cfg.ttl,
            max_entries=cfg.max_entries,
            sweep_granularity=cfg.sweep_granularity,
            metrics=self.metrics,
        )
        self.tcp_clients: RegistrationTable = RegistrationTable(now_fn, metrics=self.metrics)
        self.shard_ring = shard_ring
        self.shard_index = shard_index
        self._tcp_conns: Dict[int, _ControlConnection] = {}
        self._udp = stack.udp.socket(port)
        self._udp.on_datagram = self._on_udp
        self._listener = stack.tcp.listen(port, on_accept=self._on_accept, reuse=True)
        #: Stable pairing nonce per (pair, transport) so that retransmitted
        #: connect requests (datagram loss, §3.2's asynchronous timing) keep
        #: authenticating the same punch attempt.
        self._pair_nonces: Dict[tuple, tuple] = {}
        self.pair_nonce_ttl = 30.0
        # metrics
        self.connect_requests = 0
        self.relayed_messages = 0
        self.relayed_bytes = 0
        self.relay_send_failures = 0
        self.errors_sent = 0
        self.restarts = 0
        self.endpoint_moves = 0
        self.adopted_registrations = 0
        self.shard_redirects = 0
        self.shard_forwards = 0
        self._redirect_counter = self.metrics.bound_counter("rendezvous.shard.redirects")
        self._forward_counter = self.metrics.bound_counter("rendezvous.shard.forwards")
        #: True while the server is killed (see :meth:`stop`).
        self.stopped = False
        if cfg.ttl is not None:
            self.udp_clients.start_sweeps(self.scheduler)

    @property
    def scheduler(self):
        return self.host.scheduler

    def stop(self) -> None:
        """Kill the server: release its sockets and drop all state.

        Unlike :meth:`restart` (amnesia, but still answering), a stopped
        server is *gone*: UDP keepalives fall on an unbound port (no ack, no
        error — exactly what a dead host looks like) and TCP connection
        attempts draw an RST.  Clients with a server list detect the decay
        and fail over; see :mod:`repro.core.failover`.
        """
        if self.stopped:
            return
        self.stopped = True
        self.udp_clients.stop_sweeps()
        self.udp_clients.clear()
        self.tcp_clients.clear()
        self._pair_nonces.clear()
        conns, self._tcp_conns = self._tcp_conns, {}
        for control in conns.values():
            control.conn.abort()
        self._udp.close()
        self._listener.close()
        if self.shard_ring is not None and self.shard_index is not None:
            # Let surviving shards redirect our peers to the ring successor
            # instead of pointing them at a dead server.
            self.shard_ring.mark_down(self.shard_index)

    def start(self) -> None:
        """Revive a stopped server on the same well-known endpoint.

        State is not restored — a revived server has the same amnesia as a
        restarted one (use :meth:`adopt_registrations` for warm handover).
        """
        if not self.stopped:
            return
        self.stopped = False
        self.restarts += 1
        stack = self.host.stack  # type: ignore[attr-defined]
        self._udp = stack.udp.socket(self.port)
        self._udp.on_datagram = self._on_udp
        self._listener = stack.tcp.listen(self.port, on_accept=self._on_accept, reuse=True)
        if self.registry_config.ttl is not None:
            self.udp_clients.start_sweeps(self.scheduler)
        if self.shard_ring is not None and self.shard_index is not None:
            self.shard_ring.mark_up(self.shard_index)

    def restart(self) -> None:
        """Simulate a server crash/restart: all soft state is lost.

        Registrations, control connections, and pair nonces vanish; the
        sockets stay bound (same well-known endpoint).  Clients discover the
        amnesia when their next Keepalive draws a NOT_REGISTERED error and
        re-register (see ``PeerClient.auto_reregister``).
        """
        self.restarts += 1
        self.udp_clients.clear()
        self.tcp_clients.clear()
        self._pair_nonces.clear()
        conns, self._tcp_conns = self._tcp_conns, {}
        for control in conns.values():
            control.conn.abort()

    def registration(self, client_id: int, transport: int = TRANSPORT_UDP) -> Optional[Registration]:
        table = self.udp_clients if transport == TRANSPORT_UDP else self.tcp_clients
        return table.get(client_id)

    # -- failover hooks (registration handover) ---------------------------------

    def export_registrations(self) -> Dict[int, Registration]:
        """Snapshot the UDP registration table for handover to a successor."""
        return {
            cid: Registration(
                client_id=reg.client_id,
                public_ep=reg.public_ep,
                private_ep=reg.private_ep,
                registered_at=reg.registered_at,
                last_seen=reg.last_seen,
                keepalives=reg.keepalives,
            )
            for cid, reg in self.udp_clients.items()
        }

    def adopt_registrations(self, registrations: Dict[int, Registration]) -> None:
        """Warm-failover import: accept a predecessor's UDP registrations.

        The adopted public endpoints stay valid only while the clients' NAT
        mappings toward the *old* server still exist and the NATs map
        endpoint-independently — exactly the §3 assumption punching relies
        on.  Clients that fail over re-register anyway; adoption just closes
        the window where relayed payloads and connect requests would fail.
        Registrations the successor already holds (the client re-registered
        here first) are *not* overwritten — its own observation is fresher.
        The import is a bulk O(n) insert with zero per-entry timer churn:
        adopted entries join the successor's sweep wheel as plain bucket
        appends (see :meth:`~repro.core.registry.RegistrationTable.adopt`).
        """
        self.adopted_registrations += self.udp_clients.adopt(registrations)

    def handover_to(self, successor: "RendezvousServer") -> None:
        """Push this server's registrations to *successor* (planned failover).

        Pair nonces ride along (without overwriting the successor's own):
        an in-flight punch whose connect-request retransmits land on the
        successor keeps authenticating against the same nonce instead of
        restarting the exchange.
        """
        successor.adopt_registrations(self.export_registrations())
        for key, value in self._pair_nonces.items():
            successor._pair_nonces.setdefault(key, value)

    # -- UDP side --------------------------------------------------------------

    def _send_udp(self, message: Message, dest: Endpoint) -> None:
        self._udp.sendto(protocol.encode(message, self.obfuscate), dest)

    def _on_udp(self, data: bytes, src: Endpoint) -> None:
        message = protocol.try_decode(data)
        if message is None:
            return  # stray traffic
        now = self.scheduler.now
        if isinstance(message, Register):
            if self._misrouted(message.client_id, src):
                return
            self.udp_clients[message.client_id] = Registration(
                client_id=message.client_id,
                public_ep=src,
                private_ep=message.private_ep,
                registered_at=now,
                last_seen=now,
            )
            self._send_udp(
                Registered(
                    client_id=message.client_id,
                    public_ep=src,
                    private_ep=message.private_ep,
                ),
                src,
            )
        elif isinstance(message, Keepalive):
            if self._misrouted(message.client_id, src):
                return
            reg = self.udp_clients.get(message.client_id)
            if reg is None:
                # We don't know this client (e.g. our state was lost across a
                # restart): tell it so it can re-register (§3.1).
                self._error(
                    RendezvousError.NOT_REGISTERED,
                    f"client {message.client_id} not registered",
                    reply_to=src,
                )
            elif reg.public_ep == src:
                reg.last_seen = now
                reg.keepalives += 1
                self.udp_clients.touch(message.client_id)
                self._send_udp(KeepaliveAck(client_id=message.client_id), src)
            else:
                # Same client, new observed endpoint: its NAT rebooted or the
                # old mapping expired and the keepalive cut a fresh one.  Track
                # the move so later endpoint exchanges hand out a hole that
                # still exists.
                reg.public_ep = src
                reg.last_seen = now
                reg.keepalives += 1
                self.endpoint_moves += 1
                self.udp_clients.touch(message.client_id)
                self._send_udp(KeepaliveAck(client_id=message.client_id), src)
        elif isinstance(message, ConnectRequest):
            self._handle_connect(message, reply_to=src)
        elif isinstance(message, ShardForward):
            self._handle_shard_forward(message, reply_to=src)
        elif isinstance(message, ShardForwardReply):
            self._handle_shard_forward_reply(message)
        elif isinstance(message, RelayPayload):
            self._handle_relay(message, transport=TRANSPORT_UDP, reply_to=src)
        elif isinstance(message, TurnExchange):
            target = self.udp_clients.lookup(message.target)
            if target is not None:
                self._send_to_client(target, message, TRANSPORT_UDP)
        elif isinstance(message, ReverseRequest):
            self._handle_reverse(message, reply_to=src)

    # -- sharding ----------------------------------------------------------------

    def _owns(self, peer_id: int) -> bool:
        """Does the ring place *peer_id* on this shard (true when unsharded)?"""
        if self.shard_ring is None or self.shard_index is None:
            return True
        return self.shard_ring.owner_index(peer_id) == self.shard_index

    def _misrouted(self, peer_id: int, reply_to: Endpoint) -> bool:
        """Redirect a client whose id another shard owns; True when redirected."""
        if self._owns(peer_id):
            return False
        self.shard_redirects += 1
        self._redirect_counter.inc()
        self._send_udp(
            ShardRedirect(peer_id=peer_id, server=self.shard_ring.owner(peer_id)),
            reply_to,
        )
        return True

    def _handle_shard_forward(self, forward: ShardForward, reply_to: Endpoint) -> None:
        """Finish a cross-shard connect request as the target's owner.

        We resolve the target locally, mint the pairing nonce, send the
        *target's* PeerEndpoints copy ourselves (the target keepalives here,
        so its NAT passes our datagrams), and return a
        :class:`ShardForwardReply` to the requesting shard — which delivers
        the requester's copy, for the mirror-image NAT-filter reason.
        """
        target = self.udp_clients.lookup(forward.target_id)
        if target is None:
            self._send_udp(
                ShardForwardReply(
                    requester_id=forward.requester_id,
                    target_id=forward.target_id,
                    target_public=Endpoint("0.0.0.0", 0),
                    target_private=Endpoint("0.0.0.0", 0),
                    nonce=0,
                    transport=forward.transport,
                    status=ShardForwardReply.STATUS_UNKNOWN_PEER,
                ),
                reply_to,
            )
            return
        nonce = self._pair_nonce(forward.requester_id, forward.target_id, forward.transport)
        self._send_to_client(
            target,
            PeerEndpoints(
                peer_id=forward.requester_id,
                public_ep=forward.requester_public,
                private_ep=forward.requester_private,
                nonce=nonce,
                transport=forward.transport,
                role=PeerEndpoints.ROLE_RESPONDER,
            ),
            forward.transport,
        )
        self._send_udp(
            ShardForwardReply(
                requester_id=forward.requester_id,
                target_id=forward.target_id,
                target_public=target.public_ep,
                target_private=target.private_ep,
                nonce=nonce,
                transport=forward.transport,
                status=ShardForwardReply.STATUS_OK,
            ),
            reply_to,
        )

    def _handle_shard_forward_reply(self, reply: ShardForwardReply) -> None:
        """Deliver the requester's half of a cross-shard endpoint exchange.

        The requester registered with (and keepalives toward) *this* shard,
        so our datagrams pass its NAT filter.  A requester we no longer hold
        (re-homed since the forward) is dropped silently — its connect
        retransmit re-routes through the new home.
        """
        requester = self.udp_clients.get(reply.requester_id)
        if requester is None:
            return
        if reply.status != ShardForwardReply.STATUS_OK:
            self._error(
                RendezvousError.UNKNOWN_PEER,
                f"peer {reply.target_id} not registered",
                reply_to=requester.public_ep,
            )
            return
        self._send_udp(
            PeerEndpoints(
                peer_id=reply.target_id,
                public_ep=reply.target_public,
                private_ep=reply.target_private,
                nonce=reply.nonce,
                transport=reply.transport,
                role=PeerEndpoints.ROLE_REQUESTER,
            ),
            requester.public_ep,
        )

    # -- TCP side ---------------------------------------------------------------

    def _on_accept(self, conn: TcpConnection) -> None:
        _ControlConnection(self, conn)

    def _dispatch_tcp(self, message: Message, control: _ControlConnection) -> None:
        now = self.scheduler.now
        if isinstance(message, Register):
            control.client_id = message.client_id
            self._tcp_conns[message.client_id] = control
            self.tcp_clients[message.client_id] = Registration(
                client_id=message.client_id,
                public_ep=control.conn.remote,
                private_ep=message.private_ep,
                registered_at=now,
                last_seen=now,
            )
            control.send(
                Registered(
                    client_id=message.client_id,
                    public_ep=control.conn.remote,
                    private_ep=message.private_ep,
                )
            )
        elif isinstance(message, Keepalive):
            reg = self.tcp_clients.get(message.client_id)
            if reg is not None:
                reg.last_seen = now
                reg.keepalives += 1
        elif isinstance(message, ConnectRequest):
            self._handle_connect(message, control=control)
        elif isinstance(message, RelayPayload):
            self._handle_relay(message, transport=TRANSPORT_TCP, control=control)
        elif isinstance(message, ReverseRequest):
            self._handle_reverse(message, control=control)
        elif isinstance(message, SeqRequest):
            self._handle_seq_request(message, control)
        elif isinstance(message, SeqReady):
            self._handle_seq_ready(message, control)

    def _tcp_conn_closed(self, client_id: int, control: _ControlConnection) -> None:
        if self._tcp_conns.get(client_id) is control:
            del self._tcp_conns[client_id]
            # Registration data is kept: the paper's sequential procedure
            # deliberately closes control connections mid-exchange (§4.5).

    # -- request handling ------------------------------------------------------------

    def _error(
        self,
        code: int,
        detail: str,
        reply_to: Optional[Endpoint] = None,
        control: Optional[_ControlConnection] = None,
    ) -> None:
        self.errors_sent += 1
        message = RendezvousError(code=code, detail=detail.encode())
        if control is not None:
            control.send(message)
        elif reply_to is not None:
            self._send_udp(message, reply_to)

    def _handle_connect(
        self,
        request: ConnectRequest,
        reply_to: Optional[Endpoint] = None,
        control: Optional[_ControlConnection] = None,
    ) -> None:
        """§3.2 step 2: forward each peer's endpoints to the other."""
        self.connect_requests += 1
        transport = request.transport
        if transport == TRANSPORT_UDP and control is None and reply_to is not None:
            if self._misrouted(request.requester_id, reply_to):
                return
        table = self.udp_clients if transport == TRANSPORT_UDP else self.tcp_clients
        requester = table.lookup(request.requester_id)
        if requester is None:
            self._error(
                RendezvousError.NOT_REGISTERED,
                f"client {request.requester_id} not registered",
                reply_to,
                control,
            )
            return
        if (
            transport == TRANSPORT_UDP
            and control is None
            and not self._owns(request.target_id)
        ):
            # The target's registration lives on another shard: hand the
            # exchange over with everything the owner needs (§3.2 step 2 runs
            # there).  Retransmitted connect requests re-forward; the owner's
            # stable pair nonce keeps them converging on one punch attempt.
            self.shard_forwards += 1
            self._forward_counter.inc()
            self._send_udp(
                ShardForward(
                    requester_id=requester.client_id,
                    requester_public=requester.public_ep,
                    requester_private=requester.private_ep,
                    target_id=request.target_id,
                    transport=transport,
                ),
                self.shard_ring.owner(request.target_id),
            )
            return
        target = table.lookup(request.target_id)
        if target is None:
            self._error(
                RendezvousError.UNKNOWN_PEER,
                f"peer {request.target_id} not registered",
                reply_to,
                control,
            )
            return
        nonce = self._pair_nonce(request.requester_id, request.target_id, transport)
        to_requester = PeerEndpoints(
            peer_id=target.client_id,
            public_ep=target.public_ep,
            private_ep=target.private_ep,
            nonce=nonce,
            transport=transport,
            role=PeerEndpoints.ROLE_REQUESTER,
        )
        to_target = PeerEndpoints(
            peer_id=requester.client_id,
            public_ep=requester.public_ep,
            private_ep=requester.private_ep,
            nonce=nonce,
            transport=transport,
            role=PeerEndpoints.ROLE_RESPONDER,
        )
        self._send_to_client(requester, to_requester, transport, reply_to, control)
        self._send_to_client(target, to_target, transport)

    def _pair_nonce(self, id_a: int, id_b: int, transport: int) -> int:
        key = (min(id_a, id_b), max(id_a, id_b), transport)
        now = self.scheduler.now
        cached = self._pair_nonces.get(key)
        if cached is not None and now - cached[1] <= self.pair_nonce_ttl:
            self._pair_nonces[key] = (cached[0], now)
            return cached[0]
        nonce = self._rng.nonce64()
        self._pair_nonces[key] = (nonce, now)
        return nonce

    def _send_to_client(
        self,
        reg: Registration,
        message: Message,
        transport: int,
        reply_to: Optional[Endpoint] = None,
        control: Optional[_ControlConnection] = None,
    ) -> None:
        if transport == TRANSPORT_UDP:
            self._send_udp(message, reply_to if reply_to is not None else reg.public_ep)
            return
        conn = self._tcp_conns.get(reg.client_id) if control is None else control
        if conn is not None:
            conn.send(message)

    def _handle_relay(
        self,
        message: RelayPayload,
        transport: int,
        reply_to: Optional[Endpoint] = None,
        control: Optional[_ControlConnection] = None,
    ) -> None:
        """§2.2: forward the payload to the target over its own channel.

        An unknown target (never registered, or lost in a restart) is
        reported back to the sender instead of silently dropped, so the
        sending :class:`~repro.core.relay.RelaySession` can surface the
        failure and the application can react.
        """
        table = self.udp_clients if transport == TRANSPORT_UDP else self.tcp_clients
        target = table.lookup(message.target)
        if target is None:
            self.relay_send_failures += 1
            error = RelayError(
                sender=message.sender,
                target=message.target,
                code=RelayError.TARGET_UNREACHABLE,
            )
            if control is not None:
                control.send(error)
            elif reply_to is not None:
                self._send_udp(error, reply_to)
            return
        self.relayed_messages += 1
        self.relayed_bytes += len(message.payload)
        self._send_to_client(target, message, transport)

    def _handle_reverse(
        self,
        request: ReverseRequest,
        reply_to: Optional[Endpoint] = None,
        control: Optional[_ControlConnection] = None,
    ) -> None:
        """§2.3: relay a connection-reversal request to the target."""
        table = self.tcp_clients
        requester = table.get(request.requester_id)
        target = table.get(request.target_id)
        if requester is None or target is None:
            self._error(
                RendezvousError.UNKNOWN_PEER,
                "reversal peer not registered",
                reply_to,
                control,
            )
            return
        nonce = self._rng.nonce64()
        self._send_to_client(
            requester,
            ReverseExpect(peer_id=target.client_id, nonce=nonce),
            TRANSPORT_TCP,
            control=control,
        )
        self._send_to_client(
            target,
            ReverseConnect(
                peer_id=requester.client_id,
                public_ep=requester.public_ep,
                private_ep=requester.private_ep,
                nonce=nonce,
            ),
            TRANSPORT_TCP,
        )

    def _handle_seq_request(self, request: SeqRequest, control: _ControlConnection) -> None:
        """§4.5 step 1: A asks to communicate; S tells B to punch toward A."""
        requester = self.tcp_clients.get(request.requester_id)
        target = self.tcp_clients.get(request.target_id)
        if requester is None or target is None:
            self._error(RendezvousError.UNKNOWN_PEER, "sequential peer not registered", control=control)
            return
        self._send_to_client(
            target,
            SeqConnect(
                peer_id=requester.client_id,
                public_ep=requester.public_ep,
                private_ep=requester.private_ep,
                nonce=self._rng.nonce64(),
            ),
            TRANSPORT_TCP,
        )

    def _handle_seq_ready(self, ready: SeqReady, control: _ControlConnection) -> None:
        """§4.5 step 4: B is listening; signal A to connect to B."""
        target = self.tcp_clients.get(ready.peer_id)  # the original requester A
        sender_id = control.client_id
        sender = self.tcp_clients.get(sender_id) if sender_id is not None else None
        if target is None or sender is None:
            return
        self._send_to_client(
            target,
            SeqReady(
                peer_id=sender.client_id,
                public_ep=sender.public_ep,
                private_ep=sender.private_ep,
                nonce=ready.nonce,
            ),
            TRANSPORT_TCP,
        )
