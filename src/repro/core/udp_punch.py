"""UDP hole punching (paper §3).

The :class:`UdpHolePuncher` implements §3.2's procedure: on receiving the
peer's endpoints from S, start sending authenticated ``Punch`` probes to the
peer's **public and private** endpoints simultaneously, answer every valid
probe with a ``PunchAck``, and *lock in* the first endpoint that elicits a
valid response.  The same code handles all three topologies of §3.3-§3.5
without knowing which one applies — that automatic behaviour is the point of
the technique.

The :class:`UdpSession` it produces carries application data, sends
keep-alives to hold the NAT hole open (§3.6), and detects a dead hole so the
application can re-punch on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.auth import message_is_from_peer
from repro.core.protocol import (
    Punch,
    PunchAck,
    SessionClose,
    SessionData,
    SessionKeepalive,
    TRANSPORT_UDP,
)
from repro.netsim.addresses import Endpoint
from repro.netsim.clock import Timer
from repro.obs.spans import OUTCOME_LOCKED, OUTCOME_TIMEOUT, Span
from repro.util.errors import TimeoutError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import PeerClient


@dataclass(frozen=True)
class PunchConfig:
    """Timing knobs for UDP hole punching and session maintenance.

    Attributes:
        probe_interval: seconds between probe rounds to all candidates.
        timeout: give up punching after this many seconds.
        keepalive_interval: idle gap after which a session keep-alive is sent
            (§3.6 — must undercut the NAT's UDP idle timeout).
        broken_after_missed: consecutive missed keepalive intervals after
            which the session is declared broken (triggering §3.6's
            "re-run the hole punching procedure on demand").
        predict_ports: §5.1's port-prediction trick for symmetric NATs with
            predictable allocation: additionally probe the peer's public IP
            at ports ``public.port + 1 .. public.port + predict_ports``,
            guessing which port the peer's NAT will assign to the punch
            session.  0 (default) disables it — the paper calls prediction
            "chasing a moving target", useful but not a robust solution.
        repunch_attempts: §3.6's "re-run the hole punching procedure on
            demand", automated: when the session is declared broken the
            client re-punches up to this many times before giving up.
            0 (default) leaves recovery to the application's ``on_broken``.
        repunch_backoff: delay before the first re-punch attempt; each
            subsequent attempt doubles it (exponential backoff).
        repunch_backoff_cap: upper bound on the backoff delay.
    """

    probe_interval: float = 0.25
    timeout: float = 10.0
    keepalive_interval: float = 15.0
    broken_after_missed: int = 3
    predict_ports: int = 0
    repunch_attempts: int = 0
    repunch_backoff: float = 0.5
    repunch_backoff_cap: float = 8.0


SessionHandler = Callable[["UdpSession"], None]
FailureHandler = Callable[[Exception], None]


class UdpSession:
    """An established peer-to-peer UDP session.

    Attributes:
        remote: the locked-in endpoint for the peer (§3.2 step 3).
        on_data: callback ``(payload: bytes)`` for application data.
        on_broken: callback invoked once if the NAT hole dies (keepalives
            unanswered); the application should re-punch on demand.
        on_repunched: callback ``(new_session)`` invoked when the client's
            automatic re-punch (``config.repunch_attempts > 0``) replaces
            this broken session with a fresh one.
    """

    def __init__(
        self,
        client: "PeerClient",
        peer_id: int,
        nonce: int,
        remote: Endpoint,
        config: PunchConfig,
    ) -> None:
        self.client = client
        self.peer_id = peer_id
        self.nonce = nonce
        self.remote = remote
        self.config = config
        self.established_at = client.scheduler.now
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_broken: Optional[Callable[[], None]] = None
        self.on_repunched: Optional[Callable[["UdpSession"], None]] = None
        self.on_closed_by_peer: Optional[Callable[[], None]] = None
        self.closed = False
        self.broken = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.keepalives_sent = 0
        self._last_outbound = self.established_at
        self._last_inbound = self.established_at
        self._keepalive_timer: Optional[Timer] = None
        client.metrics.counter("session.udp.established").inc()
        self._keepalive_counter = client.metrics.counter("session.udp.keepalives")
        # Flight recorder: the session is its own attempt (child of the
        # requester's connect attempt), so a hole that later dies can be
        # attributed — the nat.reboot / fault that killed it lands in this
        # attempt's window, not the long-finished punch's.
        self._flight = getattr(client, "flight", None)
        self._attempt = None
        if self._flight is not None:
            self._attempt = self._flight.attempt(
                "session.udp",
                parent=client._connect_attempts.get((TRANSPORT_UDP, peer_id)),
                peer=peer_id,
                remote=str(remote),
            )
        if config.keepalive_interval > 0:
            self._schedule_keepalive()

    # -- application API ---------------------------------------------------------

    def send(self, payload: bytes) -> None:
        """Send application data over the punched hole."""
        if self.closed:
            raise TimeoutError_("send on closed UDP session")
        self.bytes_sent += len(payload)
        self._last_outbound = self.client.scheduler.now
        self.client._send_peer(
            SessionData(
                sender=self.client.client_id,
                receiver=self.peer_id,
                nonce=self.nonce,
                payload=payload,
            ),
            self.remote,
        )

    def close(self, notify_peer: bool = False) -> None:
        """Stop keepalives and detach from the client; idempotent.

        With ``notify_peer=True`` a ``SessionClose`` message tells the peer
        to drop its side immediately instead of waiting for keepalive decay.
        """
        if self.closed:
            return
        if notify_peer:
            self.client._send_peer(
                SessionClose(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                ),
                self.remote,
            )
        self.closed = True
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
        if self._attempt is not None:
            self._flight.finish(self._attempt, "closed")
        self.client._session_closed(self)

    @property
    def alive(self) -> bool:
        return not self.closed and not self.broken

    # -- keepalives (§3.6) -----------------------------------------------------------

    def _schedule_keepalive(self) -> None:
        self._keepalive_timer = self.client.scheduler.call_later(
            self.config.keepalive_interval, self._keepalive_tick
        )

    def _keepalive_tick(self) -> None:
        if self.closed:
            return
        now = self.client.scheduler.now
        silent_for = now - self._last_inbound
        if silent_for > self.config.keepalive_interval * self.config.broken_after_missed:
            self._mark_broken()
            return
        if now - self._last_outbound >= self.config.keepalive_interval - 1e-9:
            self.keepalives_sent += 1
            self._keepalive_counter.inc()
            self._last_outbound = now
            self.client._send_peer(
                SessionKeepalive(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                ),
                self.remote,
            )
        self._schedule_keepalive()

    def _mark_broken(self) -> None:
        """The hole died (e.g. NAT idle timeout outlived our keepalives)."""
        self.broken = True
        self.client.metrics.counter("session.udp.broken").inc()
        if self._attempt is not None:
            self._flight.record(
                "session.broken", peer=self.peer_id, remote=str(self.remote)
            )
            self._flight.finish(self._attempt, "broken")
        callback = self.on_broken
        self.close()
        # The client gets first look so automatic re-punch (§3.6: re-run the
        # hole punching procedure on demand) can start before the app reacts.
        self.client._session_broken(self)
        if callback is not None:
            callback()

    # -- inbound ------------------------------------------------------------------

    def _handle(self, message, src: Endpoint) -> None:
        self._last_inbound = self.client.scheduler.now
        if isinstance(message, SessionClose):
            callback = self.on_closed_by_peer
            self.close()
            if callback is not None:
                callback()
            return
        if isinstance(message, SessionData):
            self.bytes_received += len(message.payload)
            if self.on_data is not None:
                self.on_data(message.payload)
        elif isinstance(message, Punch):
            # Peer re-punching (perhaps it saw the session die): ack so it
            # can re-lock quickly.
            self.client._send_peer(
                PunchAck(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                ),
                src,
            )
        elif isinstance(message, SessionKeepalive):
            # Echo a keepalive if we have been quiet: the sender needs an
            # answer to distinguish "peer idle" from "hole dead" (§3.6).
            now = self.client.scheduler.now
            if now - self._last_outbound >= self.config.keepalive_interval / 2:
                self._last_outbound = now
                self.keepalives_sent += 1
                self._keepalive_counter.inc()
                self.client._send_peer(
                    SessionKeepalive(
                        sender=self.client.client_id,
                        receiver=self.peer_id,
                        nonce=self.nonce,
                    ),
                    self.remote,
                )

    def __repr__(self) -> str:
        return f"UdpSession(peer={self.peer_id}, remote={self.remote}, alive={self.alive})"


class UdpHolePuncher:
    """One in-flight UDP hole punch toward a single peer (§3.2).

    Created by :class:`~repro.core.client.PeerClient` when the endpoint
    exchange completes; both the requester and the responder run the same
    puncher ("the order and timing of these messages are not critical as
    long as they are asynchronous").
    """

    def __init__(
        self,
        client: "PeerClient",
        peer_id: int,
        nonce: int,
        candidates: List[Endpoint],
        on_session: SessionHandler,
        on_failure: Optional[FailureHandler],
        config: PunchConfig,
        span: Optional[Span] = None,
    ) -> None:
        self.client = client
        self.peer_id = peer_id
        self.nonce = nonce
        # Remember where each candidate came from so the lock-in can be
        # classified (public/private/predicted/peer-reflexive).
        self._public_candidate = candidates[0] if candidates else None
        self._private_candidate = candidates[1] if len(candidates) > 1 else None
        self._predicted: set = set()
        if config.predict_ports and candidates:
            # §5.1 port prediction: the peer's NAT allocated `public.port`
            # for its session with S; a sequential allocator will hand the
            # punch session the next port(s).
            public = candidates[0]
            predicted = [
                Endpoint(public.ip, public.port + k)
                for k in range(1, config.predict_ports + 1)
                if public.port + k <= 0xFFFF
            ]
            self._predicted = set(predicted)
            candidates = list(candidates) + predicted
        # Dedup while preserving order: public first, then private (§3.2).
        seen = set()
        self.candidates = [c for c in candidates if not (c in seen or seen.add(c))]
        metrics = client.metrics
        self._parent_span = span
        self.span = (
            span.child("punch.udp")
            if span is not None
            else metrics.span("punch.udp", peer=str(peer_id))
        )
        self._probe_counter = metrics.counter("punch.udp.probes_sent")
        self._ack_counter = metrics.counter("punch.udp.acks_received")
        self._reflexive_counter = metrics.counter("punch.udp.peer_reflexive")
        self.on_session = on_session
        self.on_failure = on_failure
        self.config = config
        self.started_at = client.scheduler.now
        self.finished = False
        self.probes_sent = 0
        self.acks_received = 0
        self.peer_reflexive_candidates = 0
        self.locked_endpoint: Optional[Endpoint] = None
        self.elapsed: Optional[float] = None
        self._probe_timer: Optional[Timer] = None
        self._deadline_timer: Optional[Timer] = None

    def start(self) -> None:
        """Begin probing all candidate endpoints (§3.2 step 3)."""
        self.span.event("probing-started", candidates=len(self.candidates))
        self._deadline_timer = self.client.scheduler.call_later(
            self.config.timeout, self._on_deadline
        )
        self._probe_round()

    def _probe_round(self) -> None:
        if self.finished:
            return
        for candidate in self.candidates:
            self.probes_sent += 1
            self.client._send_peer(
                Punch(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                ),
                candidate,
            )
        self._probe_counter.inc(len(self.candidates))
        self._probe_timer = self.client.scheduler.call_later(
            self.config.probe_interval, self._probe_round
        )

    # -- inbound -------------------------------------------------------------------

    def handle(self, message, src: Endpoint) -> None:
        """Process a punch-phase message attributed to this peer."""
        if not message_is_from_peer(message, self.client.client_id, self.peer_id, self.nonce):
            return  # stray or forged (§3.4): ignore robustly
        if isinstance(message, Punch):
            # Always answer valid probes, even after we locked (the peer may
            # lock a different endpoint than we did — each direction is
            # independent once both holes exist).
            self.client._send_peer(
                PunchAck(
                    sender=self.client.client_id,
                    receiver=self.peer_id,
                    nonce=self.nonce,
                ),
                src,
            )
            if src not in self.candidates:
                # Peer-reflexive discovery: a valid probe arriving from an
                # endpoint S never told us about means the peer's NAT
                # allocated a fresh mapping for this punch (it is symmetric,
                # §5.1).  Probing that observed source is the only path that
                # passes the peer NAT's filter — the trick ICE later named
                # "peer-reflexive candidates".
                self.candidates.append(src)
                self.peer_reflexive_candidates += 1
                self._reflexive_counter.inc()
                self.span.event("peer-reflexive-candidate", endpoint=str(src))
        elif isinstance(message, PunchAck):
            self.acks_received += 1
            self._ack_counter.inc()
            self._lock_in(src)
        elif isinstance(message, (SessionData, SessionKeepalive)):
            # The peer already locked in and moved on: so can we.
            self._lock_in(src, replay=message)

    def endpoint_kind(self, endpoint: Endpoint) -> str:
        """Classify a candidate by provenance: ``public``/``private`` from
        S's exchange, ``predicted`` from §5.1 port prediction, or
        ``peer-reflexive`` (learned from an unexpected probe source)."""
        if endpoint == self._public_candidate:
            return "public"
        if endpoint == self._private_candidate:
            return "private"
        if endpoint in self._predicted:
            return "predicted"
        return "peer-reflexive"

    def _lock_in(self, endpoint: Endpoint, replay=None) -> None:
        """§3.2 step 3: first endpoint that elicited a valid response wins."""
        if self.finished:
            return
        self.finished = True
        self.locked_endpoint = endpoint
        self.elapsed = self.client.scheduler.now - self.started_at
        self._cancel_timers()
        metrics = self.client.metrics
        kind = self.endpoint_kind(endpoint)
        metrics.counter("punch.udp.succeeded").inc()
        metrics.counter("punch.udp.endpoint", kind=kind).inc()
        metrics.histogram("punch.udp.lock_in_seconds").observe(self.elapsed)
        self.span.finish(OUTCOME_LOCKED, endpoint=str(endpoint), endpoint_kind=kind)
        if self._parent_span is not None:
            self._parent_span.finish(OUTCOME_LOCKED)
        session = UdpSession(
            self.client, self.peer_id, self.nonce, endpoint, self.config
        )
        self.client._puncher_succeeded(self, session)
        self.on_session(session)
        if replay is not None:
            session._handle(replay, endpoint)

    def _on_deadline(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._cancel_timers()
        self.client.metrics.counter("punch.udp.failed").inc()
        self.span.finish(OUTCOME_TIMEOUT)
        if self._parent_span is not None:
            self._parent_span.finish(OUTCOME_TIMEOUT)
        self.client._puncher_failed(self)
        if self.on_failure is not None:
            self.on_failure(
                TimeoutError_(
                    f"UDP hole punch to peer {self.peer_id} timed out after "
                    f"{self.config.timeout:.1f}s"
                )
            )

    def _cancel_timers(self) -> None:
        if self._probe_timer is not None:
            self._probe_timer.cancel()
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()

    def __repr__(self) -> str:
        return (
            f"UdpHolePuncher(peer={self.peer_id}, candidates={self.candidates}, "
            f"locked={self.locked_endpoint})"
        )
