"""Sharded, batch-sweeping registration plane for the rendezvous servers.

The paper's rendezvous server S (§3.1) is trivially correct at the scale of
its examples — a handful of clients, one dict, one keepalive timer each.  The
ROADMAP north star ("millions of users") needs the same observable behaviour
at 1M+ live registrations in one simulation, which rules out two things the
naive design does per peer:

* **one ``Scheduler`` timer per registration** for TTL expiry — a million
  heap entries churned on every keepalive refresh; and
* **one server owning every registration** — a single Python dict is fine,
  but every lookup, sweep, and handover then serialises through one host.

This module supplies the scalable plane:

:class:`RegistrationTable`
    One shard's registration store.  Dict-compatible (so existing code and
    tests that iterate ``server.udp_clients`` keep working verbatim), with
    optional TTL + LRU eviction.  Expiry uses *timer-wheel buckets* on the
    virtual clock: registrations are filed under coarse deadline buckets and
    a single repeating sweep timer retires whole buckets at once.  Keepalive
    refreshes are O(1) — they update ``last_seen`` and the LRU order only;
    the wheel re-files the entry lazily when its old bucket comes due.  With
    no TTL and no size bound configured the table degenerates to a plain
    dict: no sweep timer is ever scheduled and event traces stay
    byte-identical to the unsharded design.

:class:`ShardRing`
    Deterministic peer-id → shard mapping over an ordered server pool (the
    PR 3 failover server list doubles as the ring).  ``crc32`` keyed like
    :func:`repro.netsim.device_seed` so placement is stable under
    ``PYTHONHASHSEED``.  Downed shards are probed past linearly, which is
    what makes lookups during a shard failover land on the successor that
    adopted (or will re-learn) the registrations.

:class:`ShardedRegistry`
    Ring + tables in one object — the shape the scale bench drives directly.

:class:`KeepaliveWheel`
    The client-side dual: any number of keepalive loops share one scheduler
    timer per wheel tick instead of one timer per peer.

Metric names (pre-bound, virtual-time histograms):

* ``rendezvous.lookup.hits`` / ``rendezvous.lookup.misses`` — counters
* ``rendezvous.lookup.age`` — histogram, virtual seconds since the looked-up
  registration's ``last_seen`` (how stale the state we hand out is)
* ``rendezvous.evictions{reason=ttl|lru}`` — counters
* ``rendezvous.sweep.batch_size`` — histogram, entries examined per sweep
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.netsim.addresses import Endpoint
from repro.obs.metrics import MetricsRegistry

EvictionHandler = Callable[[object, str], None]


def shard_of(peer_id: int, num_shards: int) -> int:
    """Deterministic home shard for *peer_id* (stable across interpreters)."""
    return zlib.crc32((peer_id & 0xFFFFFFFF).to_bytes(4, "big")) % num_shards


@dataclass(frozen=True)
class RegistryConfig:
    """Eviction policy knobs for a registration table.

    The defaults are deliberately inert: no TTL, no size bound.  A table
    built from a default config behaves exactly like the plain dict it
    replaced — no sweep timer, no reordering — which is what keeps the
    small-scale scenario traces byte-identical.

    Attributes:
        ttl: virtual seconds a registration survives without a refresh
            (Register or Keepalive).  ``None`` disables expiry.
        sweep_granularity: width of one timer-wheel bucket; also the period
            of the shared sweep timer.  Coarser buckets mean fewer scheduler
            events and slightly later expiry (an entry outlives its deadline
            by at most one granularity).
        max_entries: LRU bound per shard; ``None`` means unbounded.
    """

    ttl: Optional[float] = None
    sweep_granularity: float = 5.0
    max_entries: Optional[int] = None


class RegistrationTable:
    """One shard's registrations: a dict with TTL + LRU eviction bolted on.

    The dict protocol (``len``/``iter``/``get``/``[]``/``items``/``clear``)
    matches how ``RendezvousServer`` and its tests already use the plain
    tables, so this is a drop-in replacement.  ``__setitem__`` routes
    through :meth:`register` so direct assignment stays policy-correct.

    Recency is tracked with the dict itself (Python dicts preserve insertion
    order; re-inserting moves to the back), so LRU costs one pop + one set.
    TTL deadlines live in coarse wheel buckets keyed by
    ``floor(deadline / granularity) + 1``; :meth:`sweep` retires every due
    bucket in one pass.  A refreshed entry found in a due bucket is simply
    re-filed under its *real* deadline — refreshes never touch the wheel
    eagerly, which is the whole trick: keepalives are O(1) attribute work
    instead of cancel + reschedule on a million-entry timer heap.
    """

    __slots__ = (
        "ttl",
        "max_entries",
        "granularity",
        "on_evict",
        "sweeps",
        "evicted_ttl",
        "evicted_lru",
        "_now",
        "_tracking",
        "_entries",
        "_armed",
        "_buckets",
        "_sweep_timer",
        "_hits",
        "_misses",
        "_ttl_evictions",
        "_lru_evictions",
        "_age_hist",
        "_sweep_hist",
    )

    def __init__(
        self,
        now_fn: Callable[[], float],
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        sweep_granularity: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        on_evict: Optional[EvictionHandler] = None,
    ) -> None:
        if sweep_granularity <= 0:
            raise ValueError("sweep_granularity must be positive")
        self._now = now_fn
        self.ttl = ttl
        self.max_entries = max_entries
        self.granularity = sweep_granularity
        self.on_evict = on_evict
        self._tracking = ttl is not None or max_entries is not None
        self._entries: Dict[int, object] = {}
        #: client id -> wheel bucket the id is currently filed under.  Every
        #: live id appears in exactly one bucket; stale bucket residues are
        #: recognised (armed index mismatch) and skipped by the sweep.
        self._armed: Dict[int, int] = {}
        self._buckets: Dict[int, List[int]] = {}
        self._sweep_timer = None
        self.sweeps = 0
        self.evicted_ttl = 0
        self.evicted_lru = 0
        metrics = metrics or MetricsRegistry(enabled=False)
        self._hits = metrics.bound_counter("rendezvous.lookup.hits")
        self._misses = metrics.bound_counter("rendezvous.lookup.misses")
        self._ttl_evictions = metrics.bound_counter("rendezvous.evictions", reason="ttl")
        self._lru_evictions = metrics.bound_counter("rendezvous.evictions", reason="lru")
        self._age_hist = metrics.histogram("rendezvous.lookup.age", unit="s")
        self._sweep_hist = metrics.histogram("rendezvous.sweep.batch_size", unit="entries")

    # -- dict protocol (drop-in for the old plain tables) -----------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __contains__(self, client_id: object) -> bool:
        return client_id in self._entries

    def __getitem__(self, client_id: int):
        return self._entries[client_id]

    def __setitem__(self, client_id: int, entry) -> None:
        self.register(client_id, entry)

    def __delitem__(self, client_id: int) -> None:
        del self._entries[client_id]
        self._armed.pop(client_id, None)

    def get(self, client_id: int, default=None):
        return self._entries.get(client_id, default)

    def keys(self):
        return self._entries.keys()

    def values(self):
        return self._entries.values()

    def items(self):
        return self._entries.items()

    def clear(self) -> None:
        self._entries.clear()
        self._armed.clear()
        self._buckets.clear()

    # -- registration lifecycle --------------------------------------------------

    def register(self, client_id: int, entry) -> None:
        """Insert (or replace) a registration; O(1).

        A replaced entry keeps its id's wheel slot — the sweep re-files it
        from the fresh ``last_seen`` when the old bucket comes due.  At
        capacity the least-recently-refreshed entry is evicted first, which
        can never be a peer with a live keepalive: every refresh moves the
        peer to the back of the order.  Recency bookkeeping (move-to-end,
        capacity checks) only runs when a size bound exists — a TTL-only
        table registers with one dict store plus one wheel filing.
        """
        entries = self._entries
        if not self._tracking:
            entries[client_id] = entry
            return
        if self.max_entries is not None:
            if client_id in entries:
                del entries[client_id]
            elif len(entries) >= self.max_entries:
                self._evict_lru()
        entries[client_id] = entry
        if self.ttl is not None:
            armed = self._armed
            if client_id not in armed:
                try:
                    last_seen = entry.last_seen
                except AttributeError:
                    last_seen = self._now()
                index = int((last_seen + self.ttl) / self.granularity) + 1
                armed[client_id] = index
                bucket = self._buckets.get(index)
                if bucket is None:
                    self._buckets[index] = [client_id]
                else:
                    bucket.append(client_id)

    def touch(self, client_id: int) -> None:
        """Refresh recency after the caller updated ``entry.last_seen``; O(1).

        Deliberately does *not* re-file the wheel bucket — the sweep does
        that lazily from the real ``last_seen`` — and only moves the entry
        to the back of the recency order when a size bound makes recency
        matter.  A keepalive against a TTL-only table is pure attribute
        work; against a bounded table it costs two dict operations.
        """
        if self.max_entries is None:
            return
        entry = self._entries.pop(client_id, None)
        if entry is not None:
            self._entries[client_id] = entry

    def refresh(self, client_id: int) -> bool:
        """The whole server-side keepalive in one call; O(1).

        ``last_seen := now`` plus the recency move (when bounded) — what a
        shard does when a keepalive lands on it, with the entry lookup,
        stamp, and reorder fused so a million keepalives a second stay
        cheap.  Returns ``False`` for unknown ids so callers can answer
        ``NOT_REGISTERED``.
        """
        entries = self._entries
        entry = entries.get(client_id)
        if entry is None:
            return False
        entry.last_seen = self._now()
        if self.max_entries is not None:
            del entries[client_id]
            entries[client_id] = entry
        return True

    def lookup(self, client_id: int):
        """Metered lookup: counts hit/miss and records the entry's staleness."""
        entry = self._entries.get(client_id)
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        self._age_hist.observe(self._now() - entry.last_seen)
        return entry

    def adopt(self, registrations: Dict[int, object]) -> int:
        """Bulk import for warm failover: O(n) inserts, zero timer churn.

        Entries the table already holds are kept — the local observation is
        fresher than the predecessor's export.  Returns how many were
        adopted.
        """
        adopted = 0
        for client_id, entry in registrations.items():
            if client_id not in self._entries:
                self.register(client_id, entry)
                adopted += 1
        return adopted

    # -- timer wheel -------------------------------------------------------------

    def _bucket_index(self, deadline: float) -> int:
        # +1 so a bucket only comes due strictly after every deadline filed
        # in it has passed; the sweep re-checks real deadlines anyway.
        return int(deadline / self.granularity) + 1

    def _arm(self, client_id: int, deadline: float) -> None:
        index = self._bucket_index(deadline)
        self._armed[client_id] = index
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [client_id]
        else:
            bucket.append(client_id)

    def _evict_lru(self) -> None:
        client_id = next(iter(self._entries))
        entry = self._entries.pop(client_id)
        self._armed.pop(client_id, None)
        self.evicted_lru += 1
        self._lru_evictions.inc()
        if self.on_evict is not None:
            self.on_evict(entry, "lru")

    def sweep(self, now: Optional[float] = None) -> List[object]:
        """Retire every due wheel bucket; returns the evicted entries.

        Entries refreshed since they were filed are re-filed under their
        real deadline (the lazy half of the wheel); entries whose deadline
        has truly passed are evicted with reason ``ttl``.
        """
        if self.ttl is None:
            return []
        if now is None:
            now = self._now()
        current = int(now / self.granularity)
        due = [index for index in self._buckets if index <= current]
        evicted: List[object] = []
        examined = 0
        for index in sorted(due):
            for client_id in self._buckets.pop(index):
                if self._armed.get(client_id) != index:
                    continue  # stale residue: deleted or re-filed meanwhile
                entry = self._entries.get(client_id)
                if entry is None:
                    del self._armed[client_id]
                    continue
                examined += 1
                deadline = entry.last_seen + self.ttl
                if deadline > now:
                    self._arm(client_id, deadline)
                else:
                    del self._entries[client_id]
                    del self._armed[client_id]
                    evicted.append(entry)
        self.sweeps += 1
        self._sweep_hist.observe(float(examined))
        if evicted:
            self.evicted_ttl += len(evicted)
            self._ttl_evictions.inc(len(evicted))
            if self.on_evict is not None:
                for entry in evicted:
                    self.on_evict(entry, "ttl")
        return evicted

    def start_sweeps(self, scheduler) -> None:
        """Drive :meth:`sweep` from one repeating timer on *scheduler*.

        A no-op without a TTL — a table with no expiry policy must add zero
        events to the simulation.
        """
        if self.ttl is None or self._sweep_timer is not None:
            return
        self._sweep_timer = scheduler.call_later(self.granularity, self._sweep_tick, scheduler)

    def _sweep_tick(self, scheduler) -> None:
        self.sweep()
        self._sweep_timer = scheduler.call_later(self.granularity, self._sweep_tick, scheduler)

    def stop_sweeps(self) -> None:
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None

    def __repr__(self) -> str:
        return (
            f"RegistrationTable(live={len(self._entries)}, ttl={self.ttl}, "
            f"max_entries={self.max_entries}, sweeps={self.sweeps})"
        )


class ShardRing:
    """Deterministic peer-id → owning-server mapping over an ordered pool.

    The ring is one shared object: every server in the pool (and any code
    that needs placement, like the scenario builders) holds a reference to
    the *same* ring, so marking a shard down is immediately visible
    everywhere.  ``owner_index`` probes linearly past downed shards, which
    sends redirects-under-failover to the successor that adopts the downed
    shard's registrations.
    """

    __slots__ = ("endpoints", "_down")

    def __init__(self, endpoints: Sequence[Endpoint]) -> None:
        if not endpoints:
            raise ValueError("ShardRing needs at least one endpoint")
        self.endpoints: List[Endpoint] = list(endpoints)
        self._down: set = set()

    def __len__(self) -> int:
        return len(self.endpoints)

    def home_index(self, peer_id: int) -> int:
        """The shard that owns *peer_id* when every server is up."""
        return shard_of(peer_id, len(self.endpoints))

    def owner_index(self, peer_id: int) -> int:
        """The live shard responsible for *peer_id* right now.

        Healthy-pool fast path: with nothing down (the steady state, and
        the one the million-peer bench hammers) this is one crc32 and a
        modulo — no probe loop, no extra frame through ``home_index``.
        """
        down = self._down
        index = zlib.crc32((peer_id & 0xFFFFFFFF).to_bytes(4, "big")) % len(
            self.endpoints
        )
        if not down:
            return index
        for _ in range(len(self.endpoints)):
            if index not in down:
                return index
            index = (index + 1) % len(self.endpoints)
        return self.home_index(peer_id)  # whole pool down: nothing better

    def owner(self, peer_id: int) -> Endpoint:
        return self.endpoints[self.owner_index(peer_id)]

    def index_of(self, endpoint: Endpoint) -> Optional[int]:
        try:
            return self.endpoints.index(endpoint)
        except ValueError:
            return None

    def mark_down(self, index: int) -> None:
        self._down.add(index)

    def mark_up(self, index: int) -> None:
        self._down.discard(index)

    def is_down(self, index: int) -> bool:
        return index in self._down

    def alive_indices(self) -> List[int]:
        return [i for i in range(len(self.endpoints)) if i not in self._down]

    def __repr__(self) -> str:
        return f"ShardRing(shards={len(self.endpoints)}, down={sorted(self._down)})"


class ShardedRegistry:
    """A pool of :class:`RegistrationTable` shards behind one :class:`ShardRing`.

    This is the registration plane as one object — what the
    ``rendezvous_scale`` bench drives directly (no packets, just the data
    structures every packet handler sits on), and a convenient backing store
    for tests that care about placement rather than wire behaviour.
    """

    def __init__(
        self,
        now_fn: Callable[[], float],
        endpoints: Sequence[Endpoint],
        config: Optional[RegistryConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or RegistryConfig()
        self.ring = ShardRing(endpoints)
        self._now = now_fn
        self.shards: List[RegistrationTable] = [
            RegistrationTable(
                now_fn,
                ttl=self.config.ttl,
                max_entries=self.config.max_entries,
                sweep_granularity=self.config.sweep_granularity,
                metrics=metrics,
            )
            for _ in endpoints
        ]

    def shard_for(self, peer_id: int) -> RegistrationTable:
        return self.shards[self.ring.owner_index(peer_id)]

    def register(self, peer_id: int, entry) -> int:
        """Place *entry* on its owning shard; returns the shard index."""
        index = self.ring.owner_index(peer_id)
        self.shards[index].register(peer_id, entry)
        return index

    def touch(self, peer_id: int) -> bool:
        """Keepalive refresh: bump ``last_seen`` and recency; O(1).

        One placement, one dict probe, one attribute store — the recency
        move is delegated only when the shard actually bounds its size.
        """
        shard = self.shards[self.ring.owner_index(peer_id)]
        entry = shard._entries.get(peer_id)
        if entry is None:
            return False
        entry.last_seen = self._now()
        if shard.max_entries is not None:
            shard.touch(peer_id)
        return True

    def lookup(self, peer_id: int):
        return self.shards[self.ring.owner_index(peer_id)].lookup(peer_id)

    @property
    def live(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_sweeps(self) -> int:
        return sum(shard.sweeps for shard in self.shards)

    @property
    def total_evicted_ttl(self) -> int:
        return sum(shard.evicted_ttl for shard in self.shards)

    def start_sweeps(self, scheduler) -> None:
        for shard in self.shards:
            shard.start_sweeps(scheduler)

    def stop_sweeps(self) -> None:
        for shard in self.shards:
            shard.stop_sweeps()

    def __repr__(self) -> str:
        return f"ShardedRegistry(shards={len(self.shards)}, live={self.live})"


class _WheelEntry:
    """Handle for one registrant on a :class:`KeepaliveWheel`."""

    __slots__ = ("callback", "args", "interval", "cancelled")

    def __init__(
        self, callback: Callable[..., None], interval: float, args: tuple = ()
    ) -> None:
        self.callback = callback
        self.args = args
        self.interval = interval
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class KeepaliveWheel:
    """Shared periodic driver: one scheduler timer per tick, any fan-out.

    The per-peer pattern (``client.start_server_keepalives`` scheduling its
    own ``call_later`` loop) costs one live heap entry per peer forever.
    The wheel files every registrant due in the same coarse tick under one
    bucket and fires them from a single timer, so a million keepalive loops
    cost the scheduler ``ttl / granularity``-ish events per period instead
    of a million.
    """

    def __init__(self, scheduler, granularity: float = 1.0) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.scheduler = scheduler
        self.granularity = granularity
        self._buckets: Dict[int, List[_WheelEntry]] = {}
        self.registrants = 0
        self.ticks_fired = 0

    def add(
        self, interval: float, callback: Callable[..., None], *args: object
    ) -> _WheelEntry:
        """Run ``callback(*args)`` roughly every *interval* virtual seconds.

        "Roughly": fires are quantised to wheel ticks, so a callback lands
        at most one granularity late — the same trade every kernel timer
        wheel makes.  Extra positional *args* ride on the entry (the
        ``call_later`` convention), so a million registrants can share one
        callback function instead of a million closures.
        """
        entry = _WheelEntry(callback, interval, args)
        self.registrants += 1
        self._file(entry, self.scheduler.now + interval)
        return entry

    def _file(self, entry: _WheelEntry, when: float) -> None:
        index = int(when / self.granularity) + 1
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            delay = max(0.0, index * self.granularity - self.scheduler.now)
            self.scheduler.call_later(delay, self._fire, index)
        else:
            bucket.append(entry)

    def iter_entries(self) -> Iterator[_WheelEntry]:
        """Every filed entry, bucket order (cancelled ones still pending
        lazy removal included) — handy for bulk shutdown."""
        for bucket in self._buckets.values():
            for entry in bucket:
                yield entry

    def _fire(self, index: int) -> None:
        entries = self._buckets.pop(index, ())
        self.ticks_fired += 1
        now = self.scheduler.now
        granularity = self.granularity
        buckets = self._buckets
        file_slow = self._file
        for entry in entries:
            if entry.cancelled:
                self.registrants -= 1
                continue
            entry.callback(*entry.args)
            # Inline re-file fast path: an existing target bucket is one
            # append; only a bucket's first entry pays the timer schedule.
            next_index = int((now + entry.interval) / granularity) + 1
            bucket = buckets.get(next_index)
            if bucket is None:
                file_slow(entry, now + entry.interval)
            else:
                bucket.append(entry)


def attach_shard_ring(servers: Iterable) -> ShardRing:
    """Wire a server pool into one shared :class:`ShardRing`.

    Builds the ring from each server's well-known endpoint (in pool order —
    the same order a failover server list uses) and points every server's
    ``shard_ring``/``shard_index`` at it.  Returns the ring.
    """
    pool = list(servers)
    ring = ShardRing([server.endpoint for server in pool])
    for index, server in enumerate(pool):
        server.shard_ring = ring
        server.shard_index = index
    return ring
