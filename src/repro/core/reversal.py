"""Connection reversal (paper §2.3).

Usable when only ONE of the peers is behind a NAT: if B (public) cannot
connect to A (NATed), B relays a request through S asking A to open a
"reverse" connection back to B.  The requester learns the pairing nonce via
``ReverseExpect`` and waits for an inbound stream carrying a matching Hello;
the target receives ``ReverseConnect`` and dials out.

The paper presents reversal both as a limited technique on its own and as
the conceptual seed of hole punching; the :mod:`~repro.core.connector`
ladder uses it between direct punching and relaying.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.protocol import Hello, ReverseConnect
from repro.core.tcp_punch import TcpStream
from repro.netsim.clock import Timer
from repro.util.errors import ConnectionError_, TimeoutError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import PeerClient

StreamHandler = Callable[[TcpStream], None]
FailureHandler = Callable[[Exception], None]


class ReversalRequest:
    """Requester-side state: waiting for the target to dial back."""

    def __init__(
        self,
        client: "PeerClient",
        target_id: int,
        on_stream: StreamHandler,
        on_failure: Optional[FailureHandler],
        timeout: float,
    ) -> None:
        self.client = client
        self.target_id = target_id
        self.on_stream = on_stream
        self.on_failure = on_failure
        self.nonce: Optional[int] = None
        self.finished = False
        self._timer: Timer = client.scheduler.call_later(timeout, self._on_timeout)

    def expect(self, nonce: int) -> None:
        """ReverseExpect arrived: register to claim the inbound stream."""
        self.nonce = nonce
        self.client._register_stream_claimant(
            self.target_id, nonce, self._claim_stream
        )
        for stream, hello in self.client._claim_parked_streams(self.target_id, nonce):
            self._claim_stream(stream, hello)

    def _claim_stream(self, stream: TcpStream, hello: Hello) -> None:
        if self.finished:
            stream.abort()
            return
        self.finished = True
        self._timer.cancel()
        stream.peer_id = self.target_id
        stream.nonce = self.nonce
        stream.authenticated = True
        if not stream.hello_sent:
            stream.send_hello(self.target_id, self.nonce)
        stream.selected = True
        self.client._reversal_finished(self)
        self.on_stream(stream)

    def _on_timeout(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self.nonce is not None:
            self.client._unregister_stream_claimant(self.target_id, self.nonce)
        self.client._reversal_finished(self)
        if self.on_failure is not None:
            self.on_failure(
                TimeoutError_(
                    f"connection reversal via peer {self.target_id} timed out"
                )
            )


class ReversalResponder:
    """Target-side: dial the requester's public endpoint and authenticate."""

    def __init__(self, client: "PeerClient", request: ReverseConnect) -> None:
        self.client = client
        self.request = request
        self.stream: Optional[TcpStream] = None
        conn = client.tcp_stack.connect(
            request.public_ep,
            local_port=0,  # a fresh ephemeral port: a plain outbound connect
            on_connected=self._on_connected,
            on_error=self._on_error,
        )
        del conn

    def _on_connected(self, conn) -> None:
        stream = TcpStream(self.client, conn, origin="connect")
        self.stream = stream
        stream._on_message = self._on_message
        stream.send_hello(self.request.peer_id, self.request.nonce)

    def _on_message(self, message) -> None:
        if isinstance(message, Hello) and (
            message.sender == self.request.peer_id
            and message.receiver == self.client.client_id
            and message.nonce == self.request.nonce
        ):
            self.stream.authenticated = True
            self.stream.peer_id = self.request.peer_id
            self.stream.nonce = self.request.nonce
            self.stream.selected = True
            self.client._deliver_incoming_stream(self.stream)

    def _on_error(self, error: ConnectionError_) -> None:
        # The requester was unreachable (it may itself be behind a NAT, the
        # case where reversal is documented to fail and punching is needed).
        self.client.reversal_dial_failures += 1
