"""Rendezvous-server failover (survivability layer).

The paper's §2.2 guarantee — "relaying always works as long as both clients
can connect to the server" — makes the rendezvous server the single point of
failure of the whole toolbox: punched sessions survive S dying, but nothing
new can be punched, reversed, or relayed until S is back.  Production
rendezvous deployments therefore run *pools* of servers; this module gives
:class:`~repro.core.client.PeerClient` the client half of that design.

A :class:`ServerFailover` manager owns an ordered list of server endpoints
and drives the client's server keepalives (§3.6).  Every keepalive to a live
server draws a :class:`~repro.core.protocol.KeepaliveAck`; when
``dead_after_missed`` consecutive probes go unanswered the manager declares
the current server dead and **migrates**: it advances to the next server in
the list (wrapping), re-registers the client's UDP (and, if in use, TCP)
registration there, and fires ``on_failover``.  Everything that addresses
the server through ``client.server`` — relay sessions, connect-request
retransmit loops, reversal requests — follows the migration transparently,
which is what lets in-flight :class:`~repro.core.relay.RelaySession`\\ s
resume on the successor instead of blackholing.

TCP control-connection failures (RST from a dead server, retransmission
timeout toward an unreachable one) feed the same miss counter via
:meth:`note_control_failure`, so a TCP-only client detects a dead server as
fast as a UDP one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.core.protocol import Keepalive
from repro.netsim.addresses import Endpoint
from repro.netsim.clock import Timer
from repro.obs.spans import OUTCOME_MIGRATED

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import PeerClient

FailoverHandler = Callable[[Endpoint, Endpoint], None]


@dataclass(frozen=True)
class FailoverConfig:
    """Timing knobs for rendezvous-server failover.

    Attributes:
        keepalive_interval: seconds between server keepalive probes (these
            double as the §3.6 NAT-mapping refresh toward S).
        dead_after_missed: consecutive unacknowledged probes (or control
            reconnect failures) after which the server is declared dead.
        control_retry: delay before re-dialling the TCP control connection
            after it errors (each failed dial counts as one miss).
    """

    keepalive_interval: float = 2.0
    dead_after_missed: int = 3
    control_retry: float = 1.0


class ServerFailover:
    """Keepalive-driven migration across an ordered rendezvous-server list.

    Attributes:
        servers: the ordered endpoint list (index 0 is the preferred server).
        index: which entry the client is currently registered with.
        migrations: completed migrations (also ``failover.migrations`` in the
            metrics registry).
        on_failover: optional ``(old_endpoint, new_endpoint)`` callback fired
            at each migration.
    """

    def __init__(
        self,
        client: "PeerClient",
        servers: Sequence[Endpoint],
        config: Optional[FailoverConfig] = None,
    ) -> None:
        if not servers:
            raise ValueError("ServerFailover needs at least one server endpoint")
        self.client = client
        self.servers: List[Endpoint] = list(servers)
        self.config = config or FailoverConfig()
        self.index = 0
        self.migrations = 0
        self.on_failover: Optional[FailoverHandler] = None
        self._misses = 0
        self._started = False
        self._tick_timer: Optional[Timer] = None
        self._control_timer: Optional[Timer] = None
        self._migrations_counter = client.metrics.counter("failover.migrations")
        self._ack_counter = client.metrics.counter("failover.keepalive_acks")
        self._miss_counter = client.metrics.counter("failover.keepalive_misses")

    @property
    def current(self) -> Endpoint:
        return self.servers[self.index]

    # -- lifecycle -------------------------------------------------------------

    def start(self, interval: Optional[float] = None) -> None:
        """Begin probing the current server (replaces the plain keepalive
        loop of ``PeerClient.start_server_keepalives``)."""
        if interval is not None and interval != self.config.keepalive_interval:
            self.config = replace(self.config, keepalive_interval=interval)
        self._started = True
        self._misses = 0
        self._schedule_tick()

    def stop(self) -> None:
        self._started = False
        if self._tick_timer is not None:
            self._tick_timer.cancel()
            self._tick_timer = None
        if self._control_timer is not None:
            self._control_timer.cancel()
            self._control_timer = None

    # -- probe loop ------------------------------------------------------------

    def _schedule_tick(self) -> None:
        self._tick_timer = self.client.scheduler.call_later(
            self.config.keepalive_interval, self._tick
        )

    def _tick(self) -> None:
        if not self._started:
            return
        if self._misses >= self.config.dead_after_missed:
            self._migrate("keepalive decay")
            return
        self._misses += 1  # provisional; an ack resets it
        self.client._send_server_udp(Keepalive(client_id=self.client.client_id))
        self._schedule_tick()

    def retarget(self, endpoint: Endpoint) -> None:
        """Re-point at *endpoint* without counting a migration.

        Used when the server itself re-homes the client (a shard redirect,
        see :class:`~repro.core.protocol.ShardRedirect`): probes must track
        the server that actually holds the registration, and a later decay
        there should migrate to *its* list neighbour.  Endpoints outside the
        configured pool are appended — a ring can name servers the client
        was never told about.
        """
        if endpoint not in self.servers:
            self.servers.append(endpoint)
        self.index = self.servers.index(endpoint)
        self._misses = 0

    def note_ack(self) -> None:
        """A KeepaliveAck arrived from the current server."""
        if self._misses > 0:
            self._misses = 0
        self._ack_counter.inc()

    def note_control_failure(self) -> None:
        """The TCP control connection died (RST or retransmission timeout).

        Counts as one miss and schedules a re-dial toward the *current*
        server; repeated failures cross the miss threshold and migrate.
        """
        if not self._started:
            return
        self._misses += 1
        self._miss_counter.inc()
        if self._misses >= self.config.dead_after_missed:
            self._migrate("control connection failures")
            return
        if self._control_timer is None or not self._control_timer.active:
            self._control_timer = self.client.scheduler.call_later(
                self.config.control_retry, self._redial_control
            )

    def _redial_control(self) -> None:
        self._control_timer = None
        if not self._started:
            return
        if self.client._listener is not None and not self.client.tcp_registered:
            self.client._reopen_control()

    # -- migration ---------------------------------------------------------------

    def _migrate(self, reason: str) -> None:
        old = self.current
        self.index = (self.index + 1) % len(self.servers)
        new = self.current
        self.migrations += 1
        self._migrations_counter.inc()
        span = self.client.metrics.span(
            "failover", client=str(self.client.client_id), reason=reason
        )
        span.event("migrating", old=str(old), new=str(new))
        self.client.server = new
        self._misses = 0
        # Re-register on the successor.  The UDP register retransmit loop and
        # any pending connect-request loops now address the new server; relay
        # sessions ride client.server and migrate with it.
        self.client.register_udp()
        if self.client._listener is not None:
            self.client._reopen_control()
        span.finish(OUTCOME_MIGRATED, old=str(old), new=str(new))
        if self.on_failover is not None:
            self.on_failover(old, new)
        self._schedule_tick()

    def __repr__(self) -> str:
        return (
            f"ServerFailover(current={self.current}, index={self.index}, "
            f"migrations={self.migrations})"
        )
