"""P2PConnector: the strategy ladder.

The paper's toolbox, ordered from most direct to most reliable:

1. **hole punching** (§3/§4) — succeeds whenever the NATs are well-behaved,
   and degenerates to a plain direct connection when the peer is public;
2. **connection reversal** (§2.3) — succeeds when *we* are publicly
   reachable and only the peer's direction was blocked;
3. **relaying** (§2.2) — "always works as long as both clients can connect
   to the server", at the cost of S's bandwidth and extra latency.

:class:`P2PConnector` tries each strategy in turn with a per-phase timeout
and reports a :class:`ConnectOutcome` per attempt — the shape modern ICE
implementations later standardised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.core.client import PeerClient
from repro.core.relay import RelaySession
from repro.core.tcp_punch import TcpStream
from repro.core.udp_punch import UdpSession
from repro.core.protocol import TRANSPORT_TCP, TRANSPORT_UDP
from repro.obs.spans import OUTCOME_ERROR, OUTCOME_FALLBACK, OUTCOME_OK
from repro.util.errors import ReproError

Channel = Union[UdpSession, TcpStream, RelaySession]
ResultHandler = Callable[["ConnectResult"], None]

#: Strategy names, in ladder order.
STRATEGY_PUNCH = "hole-punch"
STRATEGY_REVERSAL = "reversal"
STRATEGY_TURN = "turn-relay"
STRATEGY_RELAY = "relay"


@dataclass(frozen=True)
class RetryPolicy:
    """How the connector reacts when an established channel later breaks.

    NAT holes are leases, not contracts (§3.6): a NAT reboot or idle timeout
    can kill a punched session mid-conversation.  With a policy attached the
    connector re-runs the whole ladder — the network may have changed, so the
    winning strategy may differ — with exponential backoff between recoveries.

    Attributes:
        max_retries: ladder re-runs before giving up (0 disables recovery).
        backoff: delay before the first re-run; doubles per recovery.
        backoff_cap: upper bound on the re-run delay.
        tcp_keepalive_interval: if > 0, arm in-band keepalive probes on a
            winning :class:`TcpStream` so an idle punched stream detects a
            dead peer (UDP sessions carry their own keepalive config).
        tcp_broken_after_missed: consecutive silent intervals before a probed
            TCP stream is declared broken.
    """

    max_retries: int = 2
    backoff: float = 0.5
    backoff_cap: float = 8.0
    tcp_keepalive_interval: float = 0.0
    tcp_broken_after_missed: int = 3


@dataclass
class ConnectOutcome:
    """One strategy attempt's result."""

    strategy: str
    success: bool
    elapsed: float
    detail: str = ""


@dataclass
class ConnectResult:
    """The ladder's final verdict.

    Attributes:
        channel: the established channel (UdpSession / TcpStream /
            RelaySession) or None if even relaying was impossible.
        strategy: the winning strategy name, or None.
        attempts: per-strategy outcomes in the order tried.
        recovery: 0 for the initial connect; N for the Nth ladder re-run
            after a channel broke (see :class:`RetryPolicy`).
    """

    channel: Optional[Channel] = None
    strategy: Optional[str] = None
    attempts: List[ConnectOutcome] = field(default_factory=list)
    recovery: int = 0

    @property
    def connected(self) -> bool:
        return self.channel is not None


class P2PConnector:
    """Runs the strategy ladder for one client.

    Args:
        client: the local :class:`PeerClient` (already registered on the
            transports the chosen strategies need).
        transport: TRANSPORT_UDP (punch then relay) or TRANSPORT_TCP
            (punch, reversal, then relay).
        phase_timeout: per-strategy budget in virtual seconds.
        retry_policy: if set, a channel that later breaks (UDP keepalive
            decay, peer-closed TCP stream) re-runs the ladder and fires
            *on_result* again with ``result.recovery`` incremented.
    """

    def __init__(
        self,
        client: PeerClient,
        transport: int = TRANSPORT_UDP,
        phase_timeout: float = 10.0,
        use_reversal: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.client = client
        self.transport = transport
        self.phase_timeout = phase_timeout
        self.use_reversal = use_reversal and transport == TRANSPORT_TCP
        self.retry_policy = retry_policy
        #: Ladder re-runs triggered by broken channels, across all connects.
        self.recoveries = 0

    def connect(self, peer_id: int, on_result: ResultHandler) -> None:
        """Run the ladder toward *peer_id*.

        Without a :class:`RetryPolicy`, *on_result* fires exactly once.  With
        one, it fires again after each successful recovery (``recovery`` > 0
        on the new result), so the application can swap in the new channel.
        """
        self._connect(peer_id, on_result, recovery=0)

    def _connect(self, peer_id: int, on_result: ResultHandler, recovery: int) -> None:
        result = ConnectResult(recovery=recovery)
        strategies = [STRATEGY_PUNCH]
        if self.use_reversal:
            strategies.append(STRATEGY_REVERSAL)
        if self.transport == TRANSPORT_UDP and self.client.turn is not None:
            # A dedicated TURN relay (§2.2) beats burdening S with data.
            strategies.append(STRATEGY_TURN)
        strategies.append(STRATEGY_RELAY)
        span = self.client.metrics.span(
            "connect.ladder",
            peer=str(peer_id),
            transport="udp" if self.transport == TRANSPORT_UDP else "tcp",
        )
        self._run_phase(peer_id, strategies, 0, result, on_result, span)

    # -- phases ------------------------------------------------------------------

    def _run_phase(
        self,
        peer_id: int,
        strategies: List[str],
        index: int,
        result: ConnectResult,
        on_result: ResultHandler,
        span=None,
    ) -> None:
        strategy = strategies[index]
        started = self.client.scheduler.now
        done = {"fired": False}
        if span is not None:
            span.event("strategy-started", strategy=strategy)

        def succeed(channel: Channel, detail: str = "") -> None:
            if done["fired"]:
                return
            done["fired"] = True
            elapsed = self.client.scheduler.now - started
            result.attempts.append(ConnectOutcome(strategy, True, elapsed, detail))
            result.channel = channel
            result.strategy = strategy
            if span is not None:
                # Relayed channels are the §2.2 fallback, not a direct win.
                outcome = (
                    OUTCOME_FALLBACK
                    if strategy in (STRATEGY_RELAY, STRATEGY_TURN)
                    else OUTCOME_OK
                )
                span.finish(outcome, strategy=strategy)
            if self.retry_policy is not None:
                self._watch_channel(peer_id, channel, on_result, result.recovery)
            on_result(result)

        def fail(error: Exception) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            elapsed = self.client.scheduler.now - started
            result.attempts.append(
                ConnectOutcome(strategy, False, elapsed, detail=str(error))
            )
            if span is not None:
                span.event("strategy-failed", strategy=strategy, detail=str(error))
            if index + 1 < len(strategies):
                self._run_phase(peer_id, strategies, index + 1, result, on_result, span)
            else:  # pragma: no cover - relay cannot fail in-simulation
                if span is not None:
                    span.finish(OUTCOME_ERROR)
                on_result(result)

        # A strategy can fail synchronously (e.g. the client is momentarily
        # unregistered mid-failover): route the error through fail() so the
        # ladder keeps descending and every connect attempt terminates.
        try:
            if strategy == STRATEGY_PUNCH:
                self._try_punch(peer_id, succeed, fail)
            elif strategy == STRATEGY_TURN:
                self.client.connect_via_turn(
                    peer_id,
                    on_session=lambda s: succeed(s, f"TURN pair via {s.peer_relay}"),
                    on_failure=fail,
                    timeout=self.phase_timeout,
                )
            elif strategy == STRATEGY_REVERSAL:
                self.client.request_reversal(
                    peer_id,
                    on_stream=lambda s: succeed(s, f"reverse stream via {s.remote}"),
                    on_failure=fail,
                    timeout=self.phase_timeout,
                )
            else:
                # §2.2: relaying needs no handshake — it rides the existing
                # client/server connections, so it succeeds immediately.
                relay = self.client.open_relay(peer_id, self.transport)
                succeed(relay, "relayed via S")
        except ReproError as error:
            fail(error)

    # -- recovery (RetryPolicy) ----------------------------------------------------

    def _watch_channel(
        self, peer_id: int, channel: Channel, on_result: ResultHandler, recovery: int
    ) -> None:
        """Hook the channel's breakage signal to a ladder re-run."""
        policy = self.retry_policy
        if policy is None or recovery >= policy.max_retries:
            return
        tripped = {"fired": False}

        def trip(*_args) -> None:
            if tripped["fired"]:
                return
            tripped["fired"] = True
            self._channel_broken(peer_id, on_result, recovery)

        if isinstance(channel, UdpSession):
            channel.on_broken = trip
        elif isinstance(channel, TcpStream):
            channel.on_close = trip
            if policy.tcp_keepalive_interval > 0:
                channel.start_keepalives(
                    policy.tcp_keepalive_interval, policy.tcp_broken_after_missed
                )
        elif isinstance(channel, RelaySession):
            # Relaying rides the client/server connections, so the only
            # breakage signal is S bouncing a payload (peer gone / failover
            # lag): treat that like any other broken channel.  The guard
            # matters here — S may bounce several queued payloads at once.
            channel.on_error = trip

    def _channel_broken(self, peer_id: int, on_result: ResultHandler, recovery: int) -> None:
        policy = self.retry_policy
        if policy is None:  # pragma: no cover - watch is only armed with a policy
            return
        self.recoveries += 1
        self.client.metrics.counter("connector.recoveries").inc()
        delay = min(policy.backoff * (2 ** recovery), policy.backoff_cap)
        self.client.scheduler.call_later(
            delay, self._connect, peer_id, on_result, recovery + 1
        )

    def _try_punch(self, peer_id: int, succeed, fail) -> None:
        import dataclasses

        if self.transport == TRANSPORT_UDP:
            config = dataclasses.replace(
                self.client.punch_config, timeout=self.phase_timeout
            )
            self.client.connect_udp(
                peer_id,
                on_session=lambda s: succeed(s, f"locked {s.remote}"),
                on_failure=fail,
                config=config,
            )
        else:
            config = dataclasses.replace(
                self.client.tcp_punch_config, timeout=self.phase_timeout
            )
            self.client.connect_tcp(
                peer_id,
                on_stream=lambda s: succeed(s, f"stream via {s.remote}"),
                on_failure=fail,
                config=config,
            )
