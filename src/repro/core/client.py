"""PeerClient: the application-facing API of the library.

One :class:`PeerClient` corresponds to the paper's "client A" / "client B":
a host that registers with a rendezvous server S and then establishes direct
peer-to-peer sessions with other clients by UDP hole punching (§3), parallel
TCP hole punching (§4.2), sequential TCP hole punching (§4.5), connection
reversal (§2.3), or relaying through S (§2.2).

Typical use (see ``examples/quickstart.py``)::

    client = PeerClient(host, client_id=1, server=server_endpoint)
    client.register_udp()
    ...run the network until registered...
    client.connect_udp(peer_id=2, on_session=lambda s: s.send(b"hi"))

The client owns one UDP socket (enough for S *and* all peers, §4.2) and —
once :meth:`register_tcp` is called — one TCP listen socket plus a control
connection to S, all sharing one local TCP port via SO_REUSEADDR (§4.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import protocol
from repro.core.failover import FailoverConfig, ServerFailover
from repro.core.protocol import (
    ConnectRequest,
    FrameBuffer,
    Hello,
    Keepalive,
    KeepaliveAck,
    Message,
    PeerEndpoints,
    Punch,
    PunchAck,
    Register,
    Registered,
    RelayError,
    RelayPayload,
    RendezvousError,
    ReverseConnect,
    ReverseExpect,
    ReverseRequest,
    SeqConnect,
    SeqReady,
    SessionClose,
    SessionData,
    SessionKeepalive,
    TRANSPORT_TCP,
    TRANSPORT_UDP,
)
from repro.core.relay import RelaySession
from repro.core.reversal import ReversalRequest, ReversalResponder
from repro.core.tcp_punch import TcpHolePuncher, TcpPunchConfig, TcpStream
from repro.core.tcp_sequential import (
    SequentialConfig,
    SequentialRequester,
    SequentialResponder,
)
from repro.core.turn import TurnClient, TurnPairSession
from repro.core.udp_punch import PunchConfig, UdpHolePuncher, UdpSession
from repro.netsim.addresses import Endpoint
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import OUTCOME_ERROR, Span
from repro.util.rng import SeededRng
from repro.netsim.clock import Timer
from repro.netsim.node import Host
from repro.util.errors import ConnectionError_, ProtocolError, ReproError, TimeoutError_

SessionHandler = Callable[[UdpSession], None]
StreamHandler = Callable[[TcpStream], None]
FailureHandler = Callable[[Exception], None]
_Claimant = Callable[[TcpStream, Hello], None]

#: How long an accepted-but-unclaimed authenticated stream is parked before
#: being dropped (covers Hello racing ahead of the endpoint exchange).
PARK_GRACE = 5.0
#: How long an accepted stream may stay silent before being dropped.
ACCEPT_AUTH_GRACE = 5.0


class PeerClient:
    """A peer application instance on one simulated host.

    Args:
        host: the simulated host (must have a HostStack attached).
        client_id: this client's identity at the rendezvous server.
        server: the server's well-known endpoint (same port for UDP/TCP).
        local_port: the client's local port — the paper's examples use 4321;
            used for the UDP socket and (separately) the TCP port family.
        obfuscate: obfuscate endpoint fields in messages (§3.1 defence
            against payload-mangling NATs; must match the server's setting).
        punch_config / tcp_punch_config / sequential_config: timing knobs.
    """

    def __init__(
        self,
        host: Host,
        client_id: int,
        server: Optional[Endpoint] = None,
        local_port: int = 4321,
        obfuscate: bool = False,
        punch_config: Optional[PunchConfig] = None,
        tcp_punch_config: Optional[TcpPunchConfig] = None,
        sequential_config: Optional[SequentialConfig] = None,
        servers: Optional[Sequence[Endpoint]] = None,
        failover_config: Optional[FailoverConfig] = None,
    ) -> None:
        if servers:
            server_list = list(servers)
        elif server is not None:
            server_list = [server]
        else:
            raise ReproError("PeerClient needs a server endpoint (or servers list)")
        self.host = host
        self.client_id = client_id
        #: The rendezvous server currently in use; a ServerFailover manager
        #: rewrites this on migration, and every send path reads it live.
        self.server = server_list[0]
        self.obfuscate = obfuscate
        self.punch_config = punch_config or PunchConfig()
        self.tcp_punch_config = tcp_punch_config or TcpPunchConfig()
        self.sequential_config = sequential_config or SequentialConfig()
        stack = host.stack  # type: ignore[attr-defined]
        self._stack = stack
        # --- UDP side -------------------------------------------------------
        self.udp_socket = stack.udp.socket(local_port)
        self.udp_socket.on_datagram = self._on_udp
        self.udp_private = self.udp_socket.local
        self.udp_public: Optional[Endpoint] = None
        self.udp_registered = False
        self._udp_register_cb: Optional[Callable[[], None]] = None
        self._udp_register_timer: Optional[Timer] = None
        self._udp_register_tries = 0
        self._server_keepalive_timer: Optional[Timer] = None
        self._keepalive_wheel_entry = None
        self._pending_udp: Dict[int, tuple] = {}
        self.punchers: Dict[int, UdpHolePuncher] = {}
        self.sessions: Dict[int, UdpSession] = {}
        self._repunch_timers: Dict[int, Timer] = {}
        #: Re-register automatically when S answers NOT_REGISTERED (it lost
        #: our registration, e.g. across a restart).
        self.auto_reregister = True
        # --- TCP side -------------------------------------------------------
        self.tcp_local_port = local_port
        self.tcp_private = Endpoint(host.primary_ip, local_port)
        self.tcp_public: Optional[Endpoint] = None
        self.tcp_registered = False
        self._tcp_register_cb: Optional[Callable[[], None]] = None
        self._control = None  # TcpConnection
        self._control_buffer = FrameBuffer()
        self._listener = None
        self._pending_tcp: Dict[int, tuple] = {}
        self.tcp_punchers: Dict[int, TcpHolePuncher] = {}
        self._stream_claimants: Dict[Tuple[int, int], _Claimant] = {}
        self._parked_streams: Dict[Tuple[int, int], Tuple[TcpStream, Hello]] = {}
        self._reversals: List[ReversalRequest] = []
        self._sequentials: Dict[int, SequentialRequester] = {}
        # --- fallbacks and app handlers ----------------------------------------
        self.relays: Dict[Tuple[int, int], RelaySession] = {}
        self.on_peer_session: Optional[SessionHandler] = None
        self.on_peer_stream: Optional[StreamHandler] = None
        self.on_relay_session: Optional[Callable[[RelaySession], None]] = None
        self.incoming_streams: List[TcpStream] = []
        # --- TURN (enabled via enable_turn) ---------------------------------------
        self.turn: Optional[TurnClient] = None
        self.turn_pairs: Dict[int, TurnPairSession] = {}
        self._pending_turn: Dict[int, tuple] = {}
        self.on_turn_session: Optional[Callable[[TurnPairSession], None]] = None
        self._rng = SeededRng(client_id, "peer-client")
        # --- metrics --------------------------------------------------------------
        self.control_reconnects = 0
        self.reversal_dial_failures = 0
        self.stray_messages = 0
        #: Shard redirects followed (sharded rendezvous pools re-home a
        #: client whose id another server owns).
        self.shard_redirects = 0
        #: The owning network's registry (set on the host by Network.add_node);
        #: standalone hosts get a private one so instrumentation never branches.
        self.metrics: MetricsRegistry = getattr(host, "metrics", None) or MetricsRegistry(
            now_fn=lambda: host.scheduler.now
        )
        #: Live connect-attempt spans keyed by (transport, peer_id); opened by
        #: connect_udp/connect_tcp, handed to the puncher at endpoint exchange.
        self._connect_spans: Dict[Tuple[int, int], Span] = {}
        #: The owning network's flight recorder (None when none is attached).
        #: connect_udp/connect_tcp open one attempt each; everything causally
        #: downstream (retransmits, punch probes, the server's replies)
        #: inherits its correlation id through the scheduler context.
        self.flight = getattr(host, "flight", None)
        self._connect_attempts: Dict[Tuple[int, int], object] = {}
        # --- rendezvous failover (multi-server survivability) ----------------------
        #: Present when the client was given an ordered ``servers`` list (or an
        #: explicit failover config): drives keepalives and migrates the
        #: registration when acks to the current server decay.
        self.failover: Optional[ServerFailover] = None
        if servers or failover_config is not None:
            self.failover = ServerFailover(self, server_list, failover_config)

    # -- conveniences ------------------------------------------------------------

    @property
    def scheduler(self):
        return self.host.scheduler

    @property
    def tcp_stack(self):
        return self._stack.tcp

    # =====================================================================
    # UDP: registration, punching, sessions
    # =====================================================================

    def register_udp(
        self,
        on_registered: Optional[Callable[[], None]] = None,
        retry_interval: float = 1.0,
        max_tries: int = 5,
    ) -> None:
        """Register with S over UDP (§3.1).  Retries cover datagram loss.

        Calling again re-registers (e.g. after the server lost its state).
        """
        self.udp_registered = False
        self._udp_register_cb = on_registered
        self._udp_register_tries = 0
        if self._udp_register_timer is not None:
            self._udp_register_timer.cancel()
        self._udp_register_attempt(retry_interval, max_tries)

    def _udp_register_attempt(self, retry_interval: float, tries_left: int) -> None:
        if self.udp_registered:
            return
        if tries_left <= 0:
            return
        self._udp_register_tries += 1
        self._send_server_udp(
            Register(client_id=self.client_id, private_ep=self.udp_private)
        )
        self._udp_register_timer = self.scheduler.call_later(
            retry_interval, self._udp_register_attempt, retry_interval, tries_left - 1
        )

    def start_server_keepalives(self, interval: float = 15.0, wheel=None) -> None:
        """Periodically refresh the registration's NAT mapping (§3.6).

        With a :class:`~repro.core.failover.ServerFailover` attached the
        manager drives the loop instead: its probes double as liveness
        checks, and unanswered ones trigger migration to the next server.

        Pass a shared :class:`~repro.core.registry.KeepaliveWheel` as
        *wheel* when many clients keep alive in one simulation: the wheel
        batches every client due in the same tick under one scheduler timer
        instead of one ``call_later`` loop per client (the default, kept for
        small scenarios and byte-identical traces).
        """
        if self.failover is not None:
            self.failover.start(interval)
            return
        if self._server_keepalive_timer is not None:
            self._server_keepalive_timer.cancel()
            self._server_keepalive_timer = None
        if self._keepalive_wheel_entry is not None:
            self._keepalive_wheel_entry.cancel()
            self._keepalive_wheel_entry = None
        if wheel is not None:
            self._keepalive_wheel_entry = wheel.add(
                interval,
                lambda: self._send_server_udp(Keepalive(client_id=self.client_id)),
            )
            return

        def tick() -> None:
            self._send_server_udp(Keepalive(client_id=self.client_id))
            self._server_keepalive_timer = self.scheduler.call_later(interval, tick)

        self._server_keepalive_timer = self.scheduler.call_later(interval, tick)

    def stop_server_keepalives(self) -> None:
        if self.failover is not None:
            self.failover.stop()
        if self._server_keepalive_timer is not None:
            self._server_keepalive_timer.cancel()
            self._server_keepalive_timer = None
        if self._keepalive_wheel_entry is not None:
            self._keepalive_wheel_entry.cancel()
            self._keepalive_wheel_entry = None

    def connect_udp(
        self,
        peer_id: int,
        on_session: SessionHandler,
        on_failure: Optional[FailureHandler] = None,
        config: Optional[PunchConfig] = None,
    ) -> None:
        """Establish a P2P UDP session with *peer_id* by hole punching (§3.2).

        The outcome arrives via *on_session* (an established
        :class:`UdpSession`) or *on_failure*.  *config* overrides the
        client-wide :attr:`punch_config` for this punch only.
        """
        if not self.udp_registered:
            raise ReproError("connect_udp before UDP registration completed")
        existing = self.sessions.get(peer_id)
        if existing is not None and existing.alive:
            self.scheduler.call_later(0.0, on_session, existing)
            return
        span = self.metrics.span("connect", transport="udp", peer=str(peer_id))
        span.event("connect-request-sent")
        self._connect_spans[(TRANSPORT_UDP, peer_id)] = span
        if self.flight is not None:
            self._connect_attempts[(TRANSPORT_UDP, peer_id)] = self.flight.attempt(
                "connect.udp", client=self.client_id, peer=peer_id
            )
        self._pending_udp[peer_id] = (on_session, on_failure, config)
        # Retransmit the request while it is pending: the request or the
        # server's forwarded endpoints may be lost in transit, and S keeps a
        # stable pairing nonce across retries.
        budget = (config or self.punch_config).timeout
        self._udp_connect_attempt(peer_id, tries_left=max(1, int(budget)))
        # If S never answers (down, unreachable, restarting) the request must
        # still fail in bounded time so recovery loops can back off and retry.
        self.scheduler.call_later(budget, self._udp_connect_deadline, peer_id)

    def _udp_connect_deadline(self, peer_id: int) -> None:
        pending = self._pending_udp.pop(peer_id, None)
        if pending is None:
            return  # endpoints arrived (or the request already failed)
        _, on_failure, _cfg = pending
        span = self._connect_spans.pop((TRANSPORT_UDP, peer_id), None)
        if span is not None:
            span.finish(OUTCOME_ERROR, reason="endpoint exchange timed out")
        self._finish_connect_attempt(TRANSPORT_UDP, peer_id, "timeout")
        if on_failure is not None:
            on_failure(TimeoutError_(f"endpoint exchange with peer {peer_id} timed out"))

    def _finish_connect_attempt(self, transport: int, peer_id: int, outcome: str) -> None:
        attempt = self._connect_attempts.pop((transport, peer_id), None)
        if attempt is not None:
            self.flight.finish(attempt, outcome)

    def _udp_connect_attempt(self, peer_id: int, tries_left: int) -> None:
        if peer_id not in self._pending_udp or tries_left <= 0:
            return
        self._send_server_udp(
            ConnectRequest(
                requester_id=self.client_id,
                target_id=peer_id,
                transport=TRANSPORT_UDP,
            )
        )
        self.scheduler.call_later(
            1.0, self._udp_connect_attempt, peer_id, tries_left - 1
        )

    def _send_server_udp(self, message: Message) -> None:
        self.udp_socket.sendto(protocol.encode(message, self.obfuscate), self.server)

    def _send_peer(self, message: Message, endpoint: Endpoint) -> None:
        """Raw datagram to a peer candidate endpoint (punchers/sessions)."""
        self.udp_socket.sendto(protocol.encode(message, self.obfuscate), endpoint)

    # -- UDP demux ----------------------------------------------------------------

    def _on_udp(self, data: bytes, src: Endpoint) -> None:
        message = protocol.try_decode(data)
        if message is None:
            self.stray_messages += 1
            return
        if isinstance(message, Registered):
            self._udp_registered(message)
        elif isinstance(message, KeepaliveAck):
            if message.client_id == self.client_id and self.failover is not None:
                self.failover.note_ack()
        elif isinstance(message, PeerEndpoints):
            if message.transport == TRANSPORT_UDP:
                self._udp_endpoint_exchange(message)
        elif isinstance(message, (Punch, PunchAck, SessionData, SessionKeepalive, SessionClose)):
            self._route_peer_message(message, src)
        elif isinstance(message, RelayPayload):
            self._route_relay(message, TRANSPORT_UDP)
        elif isinstance(message, RelayError):
            self._relay_send_failed(message, TRANSPORT_UDP)
        elif isinstance(message, protocol.TurnExchange):
            self._handle_turn_exchange(message)
        elif isinstance(message, protocol.ShardRedirect):
            self._handle_shard_redirect(message)
        elif isinstance(message, RendezvousError):
            self._udp_request_failed(message)

    def _udp_registered(self, message: Registered) -> None:
        if message.client_id != self.client_id:
            return
        self.udp_public = message.public_ep
        self.udp_registered = True
        if self._udp_register_timer is not None:
            self._udp_register_timer.cancel()
        callback, self._udp_register_cb = self._udp_register_cb, None
        if callback is not None:
            callback()

    def _handle_shard_redirect(self, message: protocol.ShardRedirect) -> None:
        """A sharded rendezvous pool re-homed us: follow the redirect.

        Repoints ``self.server`` (every send path reads it live), keeps any
        failover manager's index coherent, and re-registers so the owning
        shard observes our public endpoint itself.  The pending
        ``register_udp`` callback (if any) survives the re-registration.
        """
        if message.peer_id != self.client_id:
            self.stray_messages += 1
            return
        if message.server == self.server and self.udp_registered:
            return  # already home
        self.shard_redirects += 1
        self.metrics.counter("client.shard_redirects").inc()
        self.server = message.server
        if self.failover is not None:
            self.failover.retarget(message.server)
        self.register_udp(self._udp_register_cb)

    @property
    def behind_nat_udp(self) -> Optional[bool]:
        """True if S observed a different endpoint than we bound (§3.1)."""
        if self.udp_public is None:
            return None
        return self.udp_public != self.udp_private

    def _udp_endpoint_exchange(self, message: PeerEndpoints) -> None:
        """§3.2 step 2/3: we know the peer's endpoints — start punching."""
        peer_id = message.peer_id
        if peer_id in self.punchers and not self.punchers[peer_id].finished:
            return  # already punching this peer
        session = self.sessions.get(peer_id)
        if session is not None and session.alive and session.nonce == message.nonce:
            # Late duplicate of an exchange we already completed (S reuses
            # the pairing nonce precisely so stragglers — e.g. a nudge's
            # response arriving after lock-in, or the extra shard-to-shard
            # hop in a sharded pool — don't restart a live punch).
            return
        pending = self._pending_udp.pop(peer_id, None)
        if pending is not None:
            on_session, on_failure, config = pending
        else:
            # Responder role: deliver via the application-level handler.
            on_session = self._deliver_incoming_session
            on_failure = None
            config = None
        span = self._connect_spans.pop((TRANSPORT_UDP, peer_id), None)
        if span is not None:
            span.event("endpoints-received")
        puncher = UdpHolePuncher(
            client=self,
            peer_id=peer_id,
            nonce=message.nonce,
            candidates=[message.public_ep, message.private_ep],
            on_session=on_session,
            on_failure=on_failure,
            config=config or self.punch_config,
            span=span,
        )
        self.punchers[peer_id] = puncher
        puncher.start()
        if pending is not None:
            # We are the requester: keep nudging S while the punch is live,
            # in case the responder's copy of the endpoint exchange was lost
            # (S reuses the pairing nonce, so late copies still match).
            self._udp_connect_nudge(peer_id)

    def _udp_connect_nudge(self, peer_id: int) -> None:
        puncher = self.punchers.get(peer_id)
        if puncher is None or puncher.finished:
            return
        self._send_server_udp(
            ConnectRequest(
                requester_id=self.client_id,
                target_id=peer_id,
                transport=TRANSPORT_UDP,
            )
        )
        self.scheduler.call_later(1.0, self._udp_connect_nudge, peer_id)

    def _route_peer_message(self, message, src: Endpoint) -> None:
        sender = message.sender
        puncher = self.punchers.get(sender)
        if puncher is not None and not puncher.finished:
            puncher.handle(message, src)
            return
        session = self.sessions.get(sender)
        if (
            session is not None
            and session.alive
            and message.receiver == self.client_id
            and message.nonce == session.nonce
        ):
            session._handle(message, src)
            return
        self.stray_messages += 1

    def _route_relay(self, message: RelayPayload, transport: int) -> None:
        if message.target != self.client_id:
            self.stray_messages += 1
            return
        key = (message.sender, transport)
        session = self.relays.get(key)
        if session is None:
            session = RelaySession(self, message.sender, transport)
            self.relays[key] = session
            if self.on_relay_session is not None:
                self.on_relay_session(session)
        session._handle(message)

    def _relay_send_failed(self, error: RelayError, transport: int) -> None:
        """S reported that a relayed payload had no live target (§2.2).

        Routed to the matching :class:`RelaySession` (never the connect
        machinery — a relay delivery failure must not fail pending punches).
        """
        if error.sender != self.client_id:
            self.stray_messages += 1
            return
        session = self.relays.get((error.target, transport))
        if session is not None:
            session._send_failed(error)

    def _udp_request_failed(self, error: RendezvousError) -> None:
        if (
            error.code == RendezvousError.NOT_REGISTERED
            and self.auto_reregister
            and self.udp_registered
        ):
            # S lost our registration (restart, state flush) while we thought
            # we were registered.  Re-register and keep the pending connects:
            # their retransmit loops will retry once we are back in the table.
            self.metrics.counter("client.reregistrations").inc()
            self.register_udp()
            return
        pending, self._pending_udp = self._pending_udp, {}
        for peer_id, (_, on_failure, _cfg) in pending.items():
            span = self._connect_spans.pop((TRANSPORT_UDP, peer_id), None)
            if span is not None:
                span.finish(OUTCOME_ERROR, reason=error.reason)
            self._finish_connect_attempt(TRANSPORT_UDP, peer_id, "error")
            if on_failure is not None:
                on_failure(ReproError(f"rendezvous error: {error.reason}"))

    # -- puncher/session bookkeeping --------------------------------------------------

    def _puncher_succeeded(self, puncher: UdpHolePuncher, session: UdpSession) -> None:
        self._finish_connect_attempt(TRANSPORT_UDP, puncher.peer_id, "connected")
        self.punchers.pop(puncher.peer_id, None)
        old = self.sessions.get(puncher.peer_id)
        if old is not None and old.alive:
            old.close()
        self.sessions[puncher.peer_id] = session

    def _puncher_failed(self, puncher: UdpHolePuncher) -> None:
        self._finish_connect_attempt(TRANSPORT_UDP, puncher.peer_id, "timeout")
        self.punchers.pop(puncher.peer_id, None)

    def _session_closed(self, session: UdpSession) -> None:
        if self.sessions.get(session.peer_id) is session:
            del self.sessions[session.peer_id]

    # -- automatic re-punch (§3.6: "re-run hole punching on demand") ---------------

    def _session_broken(self, session: UdpSession) -> None:
        """Keepalives went unanswered.  With ``repunch_attempts > 0`` the
        client re-runs hole punching itself, with exponential backoff,
        instead of leaving recovery to the application's ``on_broken``."""
        if session.config.repunch_attempts <= 0:
            return
        self._repunch(session, attempt=0)

    def _repunch(self, session: UdpSession, attempt: int) -> None:
        config = session.config
        if attempt >= config.repunch_attempts:
            self.metrics.counter("session.udp.repunch_exhausted").inc()
            return
        delay = min(config.repunch_backoff * (2 ** attempt), config.repunch_backoff_cap)
        self._repunch_timers[session.peer_id] = self.scheduler.call_later(
            delay, self._repunch_attempt, session, attempt
        )

    def _repunch_attempt(self, session: UdpSession, attempt: int) -> None:
        self._repunch_timers.pop(session.peer_id, None)
        current = self.sessions.get(session.peer_id)
        if current is not None and current.alive:
            return  # the peer re-punched first; ride that session
        if not self.udp_registered:
            # Registration is itself healing (e.g. server restart): back off
            # and retry — connect_udp would raise right now.
            self._repunch(session, attempt + 1)
            return
        self.metrics.counter("session.udp.repunch_attempts").inc()
        self.connect_udp(
            session.peer_id,
            on_session=lambda new: self._repunched(session, new),
            on_failure=lambda _err: self._repunch(session, attempt + 1),
            config=session.config,
        )

    def _repunched(self, old: UdpSession, new: UdpSession) -> None:
        if new is old:
            return
        self.metrics.counter("session.udp.repunched").inc()
        if old.on_repunched is not None:
            old.on_repunched(new)
        elif self.on_peer_session is not None:
            self.on_peer_session(new)

    def _deliver_incoming_session(self, session: UdpSession) -> None:
        if self.on_peer_session is not None:
            self.on_peer_session(session)

    # =====================================================================
    # TCP: registration, parallel/sequential punching, reversal
    # =====================================================================

    def register_tcp(self, on_registered: Optional[Callable[[], None]] = None) -> None:
        """Open the listen socket and the control connection to S (§4.2).

        All TCP sockets share :attr:`tcp_local_port` via SO_REUSEADDR (§4.1).
        """
        self._tcp_register_cb = on_registered
        if self._listener is None:
            self._listener = self.tcp_stack.listen(
                self.tcp_local_port, on_accept=self._on_accept, reuse=True
            )
        self._open_control()

    def _open_control(self) -> None:
        self._control_buffer = FrameBuffer()
        self._control = self.tcp_stack.connect(
            self.server,
            local_port=self.tcp_local_port,
            reuse=True,
            on_connected=self._control_connected,
            on_error=self._control_error,
            on_data=self._control_data,
        )

    def _control_connected(self, conn) -> None:
        conn.send(
            protocol.frame(
                Register(client_id=self.client_id, private_ep=self.tcp_private),
                self.obfuscate,
            )
        )

    def _control_error(self, error) -> None:
        self.tcp_registered = False
        if self.failover is not None:
            # RST from a dead/stopped server or retransmission timeout toward
            # an unreachable one: feed the failover miss counter so TCP-only
            # clients migrate as promptly as UDP ones.
            self.failover.note_control_failure()

    def _reopen_control(self) -> None:
        """Tear down the control connection and re-dial the current server
        (used by failover after migration and for reconnects)."""
        self.control_reconnects += 1
        self.tcp_registered = False
        if self._control is not None:
            self._control.abort()
        self._open_control()

    def _control_data(self, data: bytes) -> None:
        try:
            messages = self._control_buffer.feed(data)
        except ProtocolError:
            return
        for message in messages:
            self._dispatch_server_tcp(message)

    def _send_server_tcp(self, message: Message) -> None:
        if self._control is None:
            raise ReproError("TCP control connection not open")
        try:
            self._control.send(protocol.frame(message, self.obfuscate))
        except ConnectionError_:
            # The control connection died under us (server kill mid-exchange).
            # Swallow rather than unwind the caller: pending requests have
            # their own deadlines, and failover/reconnect machinery restores
            # the channel.
            self.metrics.counter("client.control_send_failures").inc()

    def _consume_control_connection(self) -> None:
        """§4.5: the sequential procedure consumes the connection to S; we
        reset it and immediately re-register on a fresh connection."""
        self._reopen_control()

    def connect_tcp(
        self,
        peer_id: int,
        on_stream: StreamHandler,
        on_failure: Optional[FailureHandler] = None,
        config: Optional[TcpPunchConfig] = None,
    ) -> None:
        """Open a P2P TCP stream to *peer_id* by parallel hole punching (§4.2).

        *config* overrides :attr:`tcp_punch_config` for this punch only.
        """
        if not self.tcp_registered:
            raise ReproError("connect_tcp before TCP registration completed")
        span = self.metrics.span("connect", transport="tcp", peer=str(peer_id))
        span.event("connect-request-sent")
        self._connect_spans[(TRANSPORT_TCP, peer_id)] = span
        if self.flight is not None:
            self._connect_attempts[(TRANSPORT_TCP, peer_id)] = self.flight.attempt(
                "connect.tcp", client=self.client_id, peer=peer_id
            )
        self._pending_tcp[peer_id] = (on_stream, on_failure, config)
        self._send_server_tcp(
            ConnectRequest(
                requester_id=self.client_id,
                target_id=peer_id,
                transport=TRANSPORT_TCP,
            )
        )
        # Parity with connect_udp: if S never answers (down, unreachable,
        # killed mid-request) the attempt must still fail in bounded time.
        budget = (config or self.tcp_punch_config).timeout
        self.scheduler.call_later(budget, self._tcp_connect_deadline, peer_id)

    def _tcp_connect_deadline(self, peer_id: int) -> None:
        pending = self._pending_tcp.pop(peer_id, None)
        if pending is None:
            return  # endpoints arrived (or the request already failed)
        _, on_failure, _cfg = pending
        span = self._connect_spans.pop((TRANSPORT_TCP, peer_id), None)
        if span is not None:
            span.finish(OUTCOME_ERROR, reason="endpoint exchange timed out")
        self._finish_connect_attempt(TRANSPORT_TCP, peer_id, "timeout")
        if on_failure is not None:
            on_failure(TimeoutError_(f"endpoint exchange with peer {peer_id} timed out"))

    def connect_tcp_sequential(
        self,
        peer_id: int,
        on_stream: StreamHandler,
        on_failure: Optional[FailureHandler] = None,
    ) -> None:
        """Open a P2P TCP stream using the §4.5 sequential procedure."""
        if not self.tcp_registered:
            raise ReproError("connect_tcp_sequential before TCP registration")
        requester = SequentialRequester(
            self, peer_id, on_stream, on_failure, self.sequential_config
        )
        self._sequentials[peer_id] = requester
        requester.start()

    def request_reversal(
        self,
        target_id: int,
        on_stream: StreamHandler,
        on_failure: Optional[FailureHandler] = None,
        timeout: float = 15.0,
    ) -> None:
        """Ask *target_id* (via S) to connect back to us (§2.3)."""
        if not self.tcp_registered:
            raise ReproError("request_reversal before TCP registration")
        request = ReversalRequest(self, target_id, on_stream, on_failure, timeout)
        self._reversals.append(request)
        self._send_server_tcp(
            ReverseRequest(requester_id=self.client_id, target_id=target_id)
        )

    def open_relay(self, peer_id: int, transport: int = TRANSPORT_UDP) -> RelaySession:
        """Open (or return) a relayed channel to *peer_id* via S (§2.2)."""
        key = (peer_id, transport)
        session = self.relays.get(key)
        if session is None or session.closed:
            session = RelaySession(self, peer_id, transport)
            self.relays[key] = session
        return session

    def _relay_closed(self, session: RelaySession) -> None:
        key = (session.peer_id, session.transport)
        if self.relays.get(key) is session:
            del self.relays[key]

    # -- server (TCP control) demux -----------------------------------------------------

    def _dispatch_server_tcp(self, message: Message) -> None:
        if isinstance(message, Registered):
            if message.client_id == self.client_id:
                self.tcp_public = message.public_ep
                self.tcp_registered = True
                callback, self._tcp_register_cb = self._tcp_register_cb, None
                if callback is not None:
                    callback()
        elif isinstance(message, PeerEndpoints):
            if message.transport == TRANSPORT_TCP:
                self._tcp_endpoint_exchange(message)
        elif isinstance(message, ReverseExpect):
            for request in self._reversals:
                if request.target_id == message.peer_id and not request.finished:
                    request.expect(message.nonce)
                    break
        elif isinstance(message, ReverseConnect):
            ReversalResponder(self, message)
        elif isinstance(message, SeqConnect):
            SequentialResponder(self, message, self.sequential_config)
        elif isinstance(message, SeqReady):
            requester = self._sequentials.get(message.peer_id)
            if requester is not None:
                requester.handle_ready(message)
        elif isinstance(message, RelayPayload):
            self._route_relay(message, TRANSPORT_TCP)
        elif isinstance(message, RelayError):
            self._relay_send_failed(message, TRANSPORT_TCP)
        elif isinstance(message, RendezvousError):
            self._tcp_request_failed(message)

    def _tcp_endpoint_exchange(self, message: PeerEndpoints) -> None:
        """§4.2 step 2/3: start connecting while we keep listening."""
        peer_id = message.peer_id
        if peer_id in self.tcp_punchers and not self.tcp_punchers[peer_id].finished:
            return
        pending = self._pending_tcp.pop(peer_id, None)
        if pending is not None:
            on_stream, on_failure, config = pending
        else:
            on_stream = self._deliver_incoming_stream
            on_failure = None
            config = None
        span = self._connect_spans.pop((TRANSPORT_TCP, peer_id), None)
        if span is not None:
            span.event("endpoints-received")
        puncher = TcpHolePuncher(
            client=self,
            peer_id=peer_id,
            nonce=message.nonce,
            candidates=[message.public_ep, message.private_ep],
            controlling=message.role == PeerEndpoints.ROLE_REQUESTER,
            on_stream=on_stream,
            on_failure=on_failure,
            config=config or self.tcp_punch_config,
            span=span,
        )
        self.tcp_punchers[peer_id] = puncher
        self._register_stream_claimant(peer_id, message.nonce, puncher.offer_accepted)
        puncher.start()

    def _tcp_request_failed(self, error: RendezvousError) -> None:
        pending, self._pending_tcp = self._pending_tcp, {}
        for peer_id, (_, on_failure, _cfg) in pending.items():
            span = self._connect_spans.pop((TRANSPORT_TCP, peer_id), None)
            if span is not None:
                span.finish(OUTCOME_ERROR, reason=error.reason)
            self._finish_connect_attempt(TRANSPORT_TCP, peer_id, "error")
            if on_failure is not None:
                on_failure(ReproError(f"rendezvous error: {error.reason}"))

    def _tcp_puncher_finished(self, puncher: TcpHolePuncher) -> None:
        self._finish_connect_attempt(
            TRANSPORT_TCP,
            puncher.peer_id,
            "connected" if puncher.winner is not None else "timeout",
        )
        if self.tcp_punchers.get(puncher.peer_id) is puncher:
            del self.tcp_punchers[puncher.peer_id]
        self._unregister_stream_claimant(puncher.peer_id, puncher.nonce)

    def _sequential_finished(self, requester: SequentialRequester) -> None:
        if self._sequentials.get(requester.target_id) is requester:
            del self._sequentials[requester.target_id]

    def _reversal_finished(self, request: ReversalRequest) -> None:
        if request in self._reversals:
            self._reversals.remove(request)

    # =====================================================================
    # TURN: relayed peer-to-peer channels (§2.2's TURN design)
    # =====================================================================

    def enable_turn(
        self,
        turn_server: Endpoint,
        refresh_interval: Optional[float] = None,
        fallback_servers: Sequence[Endpoint] = (),
    ) -> None:
        """Attach a TURN client so :meth:`connect_via_turn` (and incoming
        TURN exchanges) can build relayed channels.

        With *fallback_servers* the client re-allocates on the next server
        when refreshes to the current one decay; either way, a relay
        endpoint that *moves* (server restart rebuilt the allocation on a
        new port) is re-advertised to every active pair session.
        """
        if self.turn is not None:
            return
        self.turn = TurnClient(
            self.host,
            turn_server,
            self.client_id,
            refresh_interval=refresh_interval,
            fallback_servers=fallback_servers,
        )
        self.turn.on_data = self._on_turn_data
        self.turn.on_relocated = self._turn_relocated

    def _turn_relocated(self, new_relay: Endpoint) -> None:
        """Our relayed endpoint moved: re-advertise it to every live pair
        (via S) and re-run each pair's opener handshake so permissions are
        installed from the new allocation."""
        for peer_id, pair in list(self.turn_pairs.items()):
            if pair.closed:
                continue
            self._send_server_udp(
                protocol.TurnExchange(
                    sender=self.client_id,
                    target=peer_id,
                    relay_ep=new_relay,
                    nonce=pair.nonce,
                )
            )
            pair.resume()

    def connect_via_turn(
        self,
        peer_id: int,
        on_session: Callable[[TurnPairSession], None],
        on_failure: Optional[FailureHandler] = None,
        timeout: float = 10.0,
    ) -> None:
        """Build a TURN-to-TURN channel with *peer_id*.

        Works across ANY NAT pair (both sides only ever talk outbound to
        the relay), at the cost of relaying every byte — the §2.2 trade.
        The peer must also have TURN enabled.
        """
        if self.turn is None:
            raise ReproError("connect_via_turn before enable_turn")
        if not self.udp_registered:
            raise ReproError("connect_via_turn before UDP registration")
        nonce = self._rng.nonce64()
        deadline = self.scheduler.call_later(
            timeout, self._turn_connect_timeout, peer_id
        )
        self._pending_turn[peer_id] = (on_session, on_failure, nonce, deadline)

        def allocated(_relay_ep: Endpoint) -> None:
            self._send_server_udp(
                protocol.TurnExchange(
                    sender=self.client_id,
                    target=peer_id,
                    relay_ep=self.turn.relay_endpoint,
                    nonce=nonce,
                )
            )

        if self.turn.relay_endpoint is not None:
            allocated(self.turn.relay_endpoint)
        else:
            self.turn.allocate(allocated)

    def _turn_connect_timeout(self, peer_id: int) -> None:
        pending = self._pending_turn.pop(peer_id, None)
        if pending is None:
            return
        _, on_failure, _, _ = pending
        pair = self.turn_pairs.get(peer_id)
        if pair is not None and pair.established:
            return
        if on_failure is not None:
            on_failure(ReproError(f"TURN exchange with peer {peer_id} timed out"))

    def _handle_turn_exchange(self, message) -> None:
        """The peer advertised its relayed endpoint (forwarded by S)."""
        if message.target != self.client_id or self.turn is None:
            return
        peer_id = message.sender
        pending = self._pending_turn.get(peer_id)
        if pending is not None:
            on_session, _, nonce, deadline = pending
            if message.nonce != nonce:
                return
            del self._pending_turn[peer_id]
            deadline.cancel()
            pair = TurnPairSession(self, self.turn, peer_id, nonce, message.relay_ep)
            self.turn_pairs[peer_id] = pair
            pair.on_established = lambda p: on_session(p)
            return
        # Responder role: allocate, answer with our relay endpoint, and
        # deliver the session once the openers cross.
        existing = self.turn_pairs.get(peer_id)
        if existing is not None and existing.nonce == message.nonce:
            if not existing.closed and existing.peer_relay != message.relay_ep:
                # The peer's relay moved (its TURN server restarted or it
                # failed over): adopt the new endpoint, re-advertise ours,
                # and re-run the opener handshake.
                existing.resume(peer_relay=message.relay_ep)
                if self.turn.relay_endpoint is not None:
                    self._send_server_udp(
                        protocol.TurnExchange(
                            sender=self.client_id,
                            target=peer_id,
                            relay_ep=self.turn.relay_endpoint,
                            nonce=message.nonce,
                        )
                    )
            return  # duplicate (or now-refreshed) exchange

        def respond(_relay_ep: Endpoint) -> None:
            pair = TurnPairSession(
                self, self.turn, peer_id, message.nonce, message.relay_ep
            )
            self.turn_pairs[peer_id] = pair
            if self.on_turn_session is not None:
                pair.on_established = self.on_turn_session
            self._send_server_udp(
                protocol.TurnExchange(
                    sender=self.client_id,
                    target=peer_id,
                    relay_ep=self.turn.relay_endpoint,
                    nonce=message.nonce,
                )
            )

        if self.turn.relay_endpoint is not None:
            respond(self.turn.relay_endpoint)
        else:
            self.turn.allocate(respond)

    def _on_turn_data(self, src: Endpoint, payload: bytes) -> None:
        """Traffic arrived at our relayed endpoint: route by source relay."""
        message = protocol.try_decode(payload)
        if message is None or not hasattr(message, "sender"):
            self.stray_messages += 1
            return
        pair = self.turn_pairs.get(getattr(message, "sender", None))
        if pair is not None and src == pair.peer_relay:
            pair._handle(message)
        else:
            self.stray_messages += 1

    # -- accepted-stream routing (§4.2 step 5) -------------------------------------------------

    def _on_accept(self, conn) -> None:
        stream = TcpStream(self, conn, origin="accept")
        # If an active puncher is expecting this remote, let it speak first
        # (covers the both-sides-listen-preferred case of §4.3/§4.4 where the
        # stream surfaces via accept() on both ends).
        for puncher in self.tcp_punchers.values():
            if not puncher.finished and puncher.matches_remote(stream.remote):
                puncher.adopt_unauthenticated(stream)
                return
        self._park_or_route_stream(stream)

    def _park_or_route_stream(self, stream: TcpStream) -> None:
        """Hold a fresh inbound stream until its Hello identifies it."""
        stream._on_message = lambda m, s=stream: self._unauth_message(s, m)

        def drop_if_silent() -> None:
            if not stream.authenticated and not stream.closed:
                stream.abort()

        self.scheduler.call_later(ACCEPT_AUTH_GRACE, drop_if_silent)

    def _unauth_message(self, stream: TcpStream, message: Message) -> None:
        if not isinstance(message, Hello):
            return  # wait for identification
        if message.receiver != self.client_id:
            stream.abort()  # §3.4/§4.2: wrong host — reject
            return
        key = (message.sender, message.nonce)
        claimant = self._stream_claimants.get(key)
        if claimant is not None:
            stream.authenticated = True
            claimant(stream, message)
            return
        # No claimant yet (Hello raced ahead of the endpoint exchange): park.
        stream.authenticated = True
        self._parked_streams[key] = (stream, message)

        def expire() -> None:
            parked = self._parked_streams.get(key)
            if parked is not None and parked[0] is stream:
                del self._parked_streams[key]
                stream.abort()

        self.scheduler.call_later(PARK_GRACE, expire)

    def _register_stream_claimant(self, peer_id: int, nonce: int, claimant: _Claimant) -> None:
        self._stream_claimants[(peer_id, nonce)] = claimant

    def _unregister_stream_claimant(self, peer_id: int, nonce: int) -> None:
        self._stream_claimants.pop((peer_id, nonce), None)

    def _claim_parked_streams(self, peer_id: int, nonce: int) -> List[Tuple[TcpStream, Hello]]:
        key = (peer_id, nonce)
        parked = self._parked_streams.pop(key, None)
        return [parked] if parked is not None else []

    def _deliver_incoming_stream(self, stream: TcpStream) -> None:
        if self.on_peer_stream is not None:
            self.on_peer_stream(stream)
        else:
            self.incoming_streams.append(stream)

    def __repr__(self) -> str:
        return (
            f"PeerClient(id={self.client_id}, udp={self.udp_private}, "
            f"registered=({self.udp_registered},{self.tcp_registered}))"
        )
