"""Sequential TCP hole punching — the NatTrav variant (paper §4.5).

Instead of punching in parallel, the peers take turns:

1. A tells S (SeqRequest) it wants to reach B, *without* listening;
2. B makes a doomed ``connect()`` to A's public endpoint — the SYN opens a
   hole in B's NAT, then fails (timeout, or RST from A's NAT);
3. B abandons the attempt, listens on its local port, and signals readiness
   (the original NatTrav signalled by closing its connection to S; we send
   an explicit SeqReady *and* consume the control connections afterwards to
   preserve the paper's resource accounting);
4. A connects to B's public endpoint, which now passes through B's punched
   hole, and the peers authenticate.

The paper's critique — timing sensitivity and consuming both clients'
connections to S — is measurable here: ``punch_delay`` is the §4.5
"doomed-to-fail attempt must last long enough for the SYN to traverse"
knob, and :attr:`PeerClient.control_reconnects` counts consumed connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.protocol import Hello, SeqConnect, SeqReady, SeqRequest
from repro.core.tcp_punch import TcpStream
from repro.netsim.clock import Timer
from repro.util.errors import ConnectionError_, TimeoutError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import PeerClient

StreamHandler = Callable[[TcpStream], None]
FailureHandler = Callable[[Exception], None]


@dataclass(frozen=True)
class SequentialConfig:
    """Timing for the sequential procedure.

    Attributes:
        punch_delay: how long B lets its doomed connect run before giving up
            and listening (§4.5: "too little delay risks a lost SYN derailing
            the process, whereas too much delay increases the total time").
        timeout: overall deadline for the requester.
        consume_control: reproduce NatTrav's consumption of both clients'
            connections to S (close + reconnect after the punch).
    """

    punch_delay: float = 0.6
    timeout: float = 30.0
    consume_control: bool = True


class SequentialRequester:
    """A's side of §4.5: request, wait for SeqReady, then dial B."""

    def __init__(
        self,
        client: "PeerClient",
        target_id: int,
        on_stream: StreamHandler,
        on_failure: Optional[FailureHandler],
        config: SequentialConfig,
    ) -> None:
        self.client = client
        self.target_id = target_id
        self.on_stream = on_stream
        self.on_failure = on_failure
        self.config = config
        self.started_at = client.scheduler.now
        self.finished = False
        self.elapsed: Optional[float] = None
        self.stream: Optional[TcpStream] = None
        self._nonce: Optional[int] = None
        self._timer: Timer = client.scheduler.call_later(config.timeout, self._fail_timeout)

    def start(self) -> None:
        self.client._send_server_tcp(
            SeqRequest(requester_id=self.client.client_id, target_id=self.target_id)
        )

    def handle_ready(self, ready: SeqReady) -> None:
        """Step 4: B is listening behind its punched hole — dial it."""
        if self.finished:
            return
        self._nonce = ready.nonce
        self.client.tcp_stack.connect(
            ready.public_ep,
            local_port=self.client.tcp_local_port,
            reuse=True,
            on_connected=self._on_connected,
            on_error=self._on_error,
        )

    def _on_connected(self, conn) -> None:
        stream = TcpStream(self.client, conn, origin="connect")
        stream._on_message = lambda m, s=stream: self._on_message(s, m)
        stream.send_hello(self.target_id, self._nonce)

    def _on_message(self, stream: TcpStream, message) -> None:
        if not isinstance(message, Hello):
            return
        if (
            message.sender != self.target_id
            or message.receiver != self.client.client_id
            or message.nonce != self._nonce
        ):
            stream.abort()
            return
        if self.finished:
            return
        self.finished = True
        self.elapsed = self.client.scheduler.now - self.started_at
        self._timer.cancel()
        stream.authenticated = True
        stream.peer_id = self.target_id
        stream.nonce = self._nonce
        stream.selected = True
        self.stream = stream
        self.client._sequential_finished(self)
        if self.config.consume_control:
            self.client._consume_control_connection()
        self.on_stream(stream)

    def _on_error(self, error: ConnectionError_) -> None:
        if self.finished:
            return
        self.finished = True
        self._timer.cancel()
        self.client._sequential_finished(self)
        if self.on_failure is not None:
            self.on_failure(
                ConnectionError_(
                    error.reason,
                    f"sequential punch dial to peer {self.target_id} failed: "
                    f"{error.reason} (§4.5: the procedure is timing-dependent)",
                )
            )

    def _fail_timeout(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.client._sequential_finished(self)
        if self.on_failure is not None:
            self.on_failure(
                TimeoutError_(f"sequential punch to peer {self.target_id} timed out")
            )


class SequentialResponder:
    """B's side of §4.5: doomed connect, then listen and report ready."""

    def __init__(self, client: "PeerClient", request: SeqConnect, config: SequentialConfig) -> None:
        self.client = client
        self.request = request
        self.config = config
        self.doomed_failed = False
        # Step 2: the doomed-to-fail connect that punches B's own NAT.
        self._doomed = client.tcp_stack.connect(
            request.public_ep,
            local_port=client.tcp_local_port,
            reuse=True,
            on_connected=self._unexpected_success,
            on_error=self._doomed_error,
        )
        client.scheduler.call_later(config.punch_delay, self._go_ready)

    def _doomed_error(self, error: ConnectionError_) -> None:
        # Expected: RST from A's NAT, ICMP, or eventual timeout.
        self.doomed_failed = True

    def _unexpected_success(self, conn) -> None:
        # A was not behind a NAT after all; the connection is real.  Treat it
        # like any accepted stream: wait for Hello-based authentication.
        stream = TcpStream(self.client, conn, origin="connect")
        self.client._park_or_route_stream(stream)

    def _go_ready(self) -> None:
        """Step 3: abandon the attempt, listen, signal readiness."""
        if self._doomed.established:
            pass  # handled by _unexpected_success
        elif not self.doomed_failed:
            self._doomed.close()  # abandon the half-open attempt
        # The client's listener on tcp_local_port is already active; claim
        # the stream A is about to open.
        self.client._register_stream_claimant(
            self.request.peer_id, self.request.nonce, self._claim_stream
        )
        self.client._send_server_tcp(
            SeqReady(
                peer_id=self.request.peer_id,
                public_ep=self.request.public_ep,
                private_ep=self.request.private_ep,
                nonce=self.request.nonce,
            )
        )

    def _claim_stream(self, stream: TcpStream, hello: Hello) -> None:
        stream.peer_id = self.request.peer_id
        stream.nonce = self.request.nonce
        stream.authenticated = True
        if not stream.hello_sent:
            stream.send_hello(self.request.peer_id, self.request.nonce)
        stream.selected = True
        if self.config.consume_control:
            self.client._consume_control_connection()
        self.client._deliver_incoming_stream(stream)
