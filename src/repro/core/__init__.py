"""The paper's contribution: rendezvous-assisted NAT traversal.

* :mod:`repro.core.protocol` — binary wire protocol (register / endpoint
  exchange / punch / relay / reversal messages) with optional IP obfuscation;
* :mod:`repro.core.rendezvous` — the well-known server S;
* :mod:`repro.core.udp_punch` — UDP hole punching (§3);
* :mod:`repro.core.tcp_punch` — parallel TCP hole punching (§4.2-4.4);
* :mod:`repro.core.tcp_sequential` — the NatTrav-style sequential variant (§4.5);
* :mod:`repro.core.reversal` — connection reversal (§2.3);
* :mod:`repro.core.relay` — relaying through S (§2.2);
* :mod:`repro.core.client` — :class:`PeerClient`, the application-facing API;
* :mod:`repro.core.connector` — the direct → reversal → punch → relay ladder;
* :mod:`repro.core.failover` — rendezvous-server failover (survivability).
"""

from repro.core.client import PeerClient
from repro.core.failover import FailoverConfig, ServerFailover
from repro.core.connector import ConnectOutcome, ConnectResult, P2PConnector, RetryPolicy
from repro.core.rendezvous import RendezvousServer
from repro.core.relay import RelaySession
from repro.core.udp_punch import UdpHolePuncher, UdpSession
from repro.core.tcp_punch import TcpHolePuncher, TcpStream

__all__ = [
    "PeerClient",
    "FailoverConfig",
    "ServerFailover",
    "ConnectOutcome",
    "ConnectResult",
    "P2PConnector",
    "RetryPolicy",
    "RendezvousServer",
    "RelaySession",
    "UdpHolePuncher",
    "UdpSession",
    "TcpHolePuncher",
    "TcpStream",
]
