"""Session authentication helpers (paper §3.4, §4.2 step 5).

Hole punching necessarily sprays probes at endpoints that may belong to the
wrong host (another machine on the local network with the peer's private IP,
§3.4), so every probe and every fresh TCP stream is authenticated against the
pairing nonce the rendezvous server issued to both sides.
"""

from __future__ import annotations

from typing import Union

from repro.core.protocol import Hello, Punch, PunchAck, SessionData, SessionKeepalive

_Authenticated = Union[Punch, PunchAck, SessionData, SessionKeepalive, Hello]


def message_is_from_peer(
    message: _Authenticated, my_id: int, peer_id: int, nonce: int
) -> bool:
    """True iff *message* proves it came from *peer_id* addressed to us.

    The check is (sender, receiver, nonce) — a stray host that happens to
    receive probes cannot forge the nonce, and probes that reached the wrong
    member of a punching mesh fail the id check.
    """
    return (
        message.sender == peer_id
        and message.receiver == my_id
        and message.nonce == nonce
    )
