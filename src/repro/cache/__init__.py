"""repro.cache — content-addressed simulation result caching.

The performance layer that makes repeated work free (the regime large-scale
NAT traversal measurement studies operate in): a deterministic **behavioral
fingerprint** keys every simulation by everything that can influence its
outcome, an in-run dedup collapses behaviourally identical devices to one
simulation each, and an on-disk :class:`ResultCache` persists results across
runs, self-invalidating whenever the protocol-suite sources change.

See ``docs/performance.md`` ("Caching & dedup") for the fingerprint recipe
and the invalidation rules; :mod:`repro.natcheck.fleet` is the main client.
"""

from repro.cache.fingerprint import (
    SUITE_PACKAGES,
    Fingerprint,
    behavior_fingerprint,
    canonical_json,
    canonicalize,
    hash_sources,
    mix_seed,
    suite_sources,
    suite_version,
)
from repro.cache.store import (
    CACHE_DIR_ENV,
    RECORD_FORMAT,
    ResultCache,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "Fingerprint",
    "RECORD_FORMAT",
    "ResultCache",
    "SUITE_PACKAGES",
    "behavior_fingerprint",
    "canonical_json",
    "canonicalize",
    "default_cache_dir",
    "hash_sources",
    "mix_seed",
    "suite_sources",
    "suite_version",
]
