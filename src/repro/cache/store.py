"""The on-disk result cache: one JSON record per behavioral fingerprint.

Records live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), one
file per :attr:`Fingerprint.core`, written via temp-file + ``os.replace``
so concurrent writers — pool workers, parallel CI jobs, two benchmark runs
sharing a home directory — race benignly: both write byte-identical
content, and the rename is atomic on POSIX.

A record stores the :attr:`Fingerprint.full` identity (which folds in the
protocol-suite version hash).  A lookup whose stored identity does not
match the expected fingerprint is an **invalidation**: the code that
produced the record has changed, so the record is stale and the caller
re-simulates (the next ``put`` overwrites the stale file in place, keeping
the cache directory from accumulating dead entries).

IO failures never propagate: an unreadable record is a miss, an unwritable
cache directory flips the store into a disabled state — caching is an
optimisation, not a correctness dependency.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.cache.fingerprint import Fingerprint

#: Environment override for the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk record schema version; bumped on incompatible layout changes.
RECORD_FORMAT = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path("~/.cache/repro").expanduser()


class ResultCache:
    """A persistent fingerprint-addressed store with hit/miss accounting.

    Counters (monotonic over the instance's lifetime):

    * ``hits`` — a record matched its fingerprint exactly and was served;
    * ``misses`` — no usable record (absent, corrupt, or invalidated);
    * ``invalidations`` — a record *existed* but was stale (code change,
      corrupt JSON, or format bump); always counted alongside a miss;
    * ``stores`` — records written.
    """

    def __init__(self, root: Optional[object] = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        self._broken = False

    def path_for(self, fingerprint: Fingerprint) -> Path:
        """The record file for *fingerprint* (named by its ``core`` hash)."""
        return self.root / f"{fingerprint.core}.json"

    def get(self, fingerprint: Fingerprint) -> Optional[Dict[str, object]]:
        """The stored record, or None (counting a miss and, when a stale or
        unreadable record was found, an invalidation)."""
        try:
            raw = self.path_for(fingerprint).read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            record = None
        if (
            not isinstance(record, dict)
            or record.get("format") != RECORD_FORMAT
            or record.get("fingerprint") != fingerprint.full
        ):
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(
        self,
        fingerprint: Fingerprint,
        report: Dict[str, object],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Atomically persist *report* under *fingerprint*.

        Silently becomes a no-op (for the store's remaining lifetime) if the
        cache directory is unwritable — a read-only home must never break a
        fleet run.
        """
        if self._broken:
            return
        record: Dict[str, object] = {
            "format": RECORD_FORMAT,
            "fingerprint": fingerprint.full,
            "core": fingerprint.core,
            "suite_version": fingerprint.suite,
            "seed": fingerprint.seed,
            "report": report,
        }
        if meta:
            record["meta"] = meta
        path = self.path_for(fingerprint)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            self._broken = True
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        try:
            entries = list(self.root.glob("*.json"))
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, invalidations={self.invalidations}, "
            f"stores={self.stores})"
        )
