"""Behavioral fingerprints: content-addressed keys for simulation results.

A fingerprint captures **everything that can influence a simulation
outcome** so that equal fingerprints provably denote equal results:

* the *payload* — a canonical JSON encoding of the inputs (the device's
  :class:`~repro.nat.behavior.NatBehavior` axes, its NAT Check config, the
  link profiles the harness wires up);
* the *derived seed* — mixed from the run seed and the payload with the
  same crc32 recipe as :func:`repro.natcheck.fleet.device_seed`, so two
  behaviourally identical devices replay the **identical** simulation (this
  is what makes in-run dedup sound even for behaviours that consume
  randomness, e.g. random port allocation);
* the *protocol-suite version* — a hash over the behaviour-relevant
  ``repro`` module sources, so any code change to the NAT model, the NAT
  Check protocol, the simulator, or the transport stacks self-invalidates
  every previously cached result.

Canonicalization guarantees byte-identical encodings for equivalent
inputs: enums render as ``Type.NAME``, numbers normalise through ``float``
(``120`` and ``120.0`` encode identically), dataclasses encode field by
field with an embedded type tag, and JSON is emitted with sorted keys and
fixed separators.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

#: Packages (under ``src/repro``) whose sources feed the suite version hash.
#: These are the layers a NAT Check simulation's outcome can depend on; the
#: observability layer (passive instrumentation) and the analysis/report
#: drivers (consumers, not inputs) are deliberately excluded so a metrics or
#: report tweak does not throw away every cached result.
SUITE_PACKAGES: Tuple[str, ...] = (
    "cache",
    "nat",
    "natcheck",
    "netsim",
    "transport",
    "util",
)

#: Test hook: appended to the version-hash input so the invalidation path can
#: be exercised without editing source files on disk.
VERSION_SALT = ""

_suite_memo: Dict[str, str] = {}


def canonicalize(obj: object) -> object:
    """Normalise *obj* into JSON-safe primitives with stable encodings.

    Equivalent values canonicalize to identical structures: ``Enum`` members
    become ``"Type.NAME"`` strings, numbers (but never bools) normalise
    through ``float`` and render via ``repr``, and dataclasses encode their
    declared fields plus a ``__type__`` tag.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, (int, float)):
        return repr(float(obj))
    if isinstance(obj, str):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded: Dict[str, object] = {"__type__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            encoded[field.name] = canonicalize(getattr(obj, field.name))
        return encoded
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(value) for value in obj]
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for fingerprinting")


def canonical_json(obj: object) -> str:
    """The canonical wire form: sorted keys, fixed separators, no whitespace."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def mix_seed(seed: int, text: str) -> int:
    """Mix *seed* with *text* into a derived seed (crc32-based, hash-stable).

    The same recipe as :func:`repro.natcheck.fleet.device_seed` (which calls
    this): ``zlib.crc32`` rather than ``hash()`` so the derivation never
    varies with ``PYTHONHASHSEED`` across interpreters or pool workers.
    """
    return seed * 1_000_003 + zlib.crc32(text.encode()) % 1_000_000


@dataclasses.dataclass(frozen=True)
class Fingerprint:
    """A content-addressed key for one simulation.

    Attributes:
        core: sha256 over the run seed and the canonical input payload —
            the on-disk filename, stable across code changes so a stale
            record is *found* (and counted as an invalidation) rather than
            silently orphaned.
        suite: the protocol-suite version hash in effect when computed.
        seed: the derived simulation seed (``mix_seed(run_seed, payload)``).
        full: sha256 over ``core`` + ``suite`` — the identity a cached
            record must match exactly to be served.
    """

    core: str
    suite: str
    seed: int
    full: str


def behavior_fingerprint(seed: int = 0, suite: str | None = None, **parts: object) -> Fingerprint:
    """Fingerprint a simulation defined by keyword *parts* and a run *seed*.

    *parts* is whatever influences the outcome (behaviour, config, link
    profiles, ...); anything :func:`canonicalize` accepts.  The derived
    ``seed`` is a pure function of the run seed and the canonical payload,
    so equal parts + equal run seed always yield the same simulation.
    """
    payload = canonical_json(parts)
    core = hashlib.sha256(f"{int(seed)}:{payload}".encode()).hexdigest()
    suite_hash = suite if suite is not None else suite_version()
    full = hashlib.sha256(f"{core}:{suite_hash}".encode()).hexdigest()
    return Fingerprint(core=core, suite=suite_hash, seed=mix_seed(int(seed), payload), full=full)


# -- suite version hashing ----------------------------------------------------


def suite_sources(packages: Sequence[str] = SUITE_PACKAGES) -> List[Path]:
    """The source files feeding the version hash (sorted, stable order)."""
    import repro

    base = Path(repro.__file__).resolve().parent
    files: List[Path] = []
    for package in packages:
        files.extend(sorted((base / package).rglob("*.py")))
    return files


def hash_sources(files: Iterable[Path], base: Path, salt: str = "") -> str:
    """sha256 over relative names + contents of *files* (rooted at *base*)."""
    digest = hashlib.sha256()
    digest.update(salt.encode())
    for path in files:
        digest.update(str(path.relative_to(base)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def suite_version() -> str:
    """Version hash of the behaviour-relevant ``repro`` sources (memoised).

    Any edit to a file under :data:`SUITE_PACKAGES` changes this value,
    which changes every :attr:`Fingerprint.full`, which makes every
    previously cached record an invalidation on its next lookup.
    """
    salt = VERSION_SALT
    cached = _suite_memo.get(salt)
    if cached is None:
        import repro

        base = Path(repro.__file__).resolve().parent
        cached = _suite_memo[salt] = hash_sources(suite_sources(), base, salt)
    return cached
