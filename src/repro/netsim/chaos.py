"""Chaos soak: randomized fault composition plus global run invariants.

Scripted :class:`~repro.netsim.faults.FaultPlan`\\ s exercise the failure
modes someone thought of; the survivability claims of the toolbox (punched
sessions repair themselves, clients fail over between rendezvous servers,
relays resume) are about the failures nobody scripted.  This module closes
that gap with a *chaos harness*: deterministic, seed-driven generation of
composite fault plans — link flaps, burst-loss windows, NAT reboots, server
restarts, kills and revives — plus a set of **global invariants** every run
must satisfy regardless of what the plan did:

* every connect attempt terminates (success or failure — never a hang);
* no leaked timers once the actors are shut down;
* NAT mapping tables stay bounded;
* the same seed replays to a byte-identical wire trace.

The module sits at the netsim layer: it knows nothing about clients or
rendezvous protocols.  Fault targets are *names* (resolved by the injector at
fire time) and invariant subjects are duck-typed (anything with a ``table``,
any scheduler with ``pending``), so tests compose it freely with the
scenario builders one layer up.

Typical soak iteration::

    rng = SeededRng(seed, "chaos")
    plan = random_fault_plan(
        rng, links=["backbone"], nats=["NAT-A", "NAT-B"], servers=["S", "S2"]
    )
    sc = build_two_nats(seed=seed, num_servers=2)
    tracker = AttemptTracker()
    connector.connect(2, tracker.expect("A->B"))
    sc.inject_faults(plan)
    sc.run_for(plan.horizon + grace)
    violations = check_invariants(sc.net, nats=sc.nats.values(), attempts=tracker)
    assert violations == []
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.netsim.faults import (
    FAULT_LINK_FLAP,
    FAULT_NAT_REBOOT,
    FAULT_SERVER_KILL,
    FAULT_SERVER_RESTART,
    FAULT_SERVER_REVIVE,
    FaultPlan,
)
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Network


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for random fault-plan generation.

    Attributes:
        warmup: no fault fires before this time (lets registrations and the
            first connects settle, so plans stress *established* state too).
        horizon: faults fire in ``[warmup, horizon)``; the soak should run
            to at least ``horizon`` plus a recovery grace period.
        min_events / max_events: how many faults one plan composes.
        flap_range: (min, max) seconds a flapped link stays down.
        kill_dead_range: (min, max) seconds between a ``server-kill`` and
            its paired ``server-revive``.
        kill_servers: generate kill/revive pairs (needs actors with
            ``stop``/``start`` — disable when targets only support
            ``restart``).
    """

    warmup: float = 5.0
    horizon: float = 45.0
    min_events: int = 3
    max_events: int = 8
    flap_range: Tuple[float, float] = (0.5, 3.0)
    kill_dead_range: Tuple[float, float] = (3.0, 10.0)
    kill_servers: bool = True


def random_fault_plan(
    rng: SeededRng,
    links: Sequence[str] = (),
    nats: Sequence[str] = (),
    servers: Sequence[str] = (),
    config: Optional[ChaosConfig] = None,
) -> FaultPlan:
    """Compose a deterministic random :class:`FaultPlan` from *rng*.

    Targets are names: link names for flaps, NAT node names for reboots,
    actor names (as passed to ``FaultPlan.schedule(targets=...)``) for server
    faults.  Every ``server-kill`` is paired with a ``server-revive`` inside
    the horizon, so a run always ends with every server answering — the
    recovery ladder, not the outage, is what the soak measures.
    """
    cfg = config or ChaosConfig()
    families: List[str] = []
    if links:
        families.append("flap")
    if nats:
        families.append("nat-reboot")
    if servers:
        families.append("server-restart")
        if cfg.kill_servers:
            families.append("server-kill")
    if not families:
        raise ValueError("random_fault_plan needs at least one target family")

    plan = FaultPlan()
    count = rng.randint(cfg.min_events, cfg.max_events)
    killed_until = {name: 0.0 for name in servers}
    for _ in range(count):
        time = rng.uniform(cfg.warmup, cfg.horizon)
        family = rng.choice(families)
        if family == "flap":
            duration = rng.uniform(*cfg.flap_range)
            plan.add(time, FAULT_LINK_FLAP, rng.choice(list(links)), duration)
        elif family == "nat-reboot":
            plan.add(time, FAULT_NAT_REBOOT, rng.choice(list(nats)))
        elif family == "server-restart":
            plan.add(time, FAULT_SERVER_RESTART, rng.choice(list(servers)))
        else:  # server-kill (+ paired revive)
            target = rng.choice(list(servers))
            dead_for = rng.uniform(*cfg.kill_dead_range)
            if killed_until[target] > time:
                # Already down around this time; turn it into a restart so
                # plans never depend on kill/revive idempotence for sanity.
                plan.add(time, FAULT_SERVER_RESTART, target)
                continue
            revive_at = min(time + dead_for, cfg.horizon)
            plan.add(time, FAULT_SERVER_KILL, target)
            plan.add(revive_at, FAULT_SERVER_REVIVE, target)
            killed_until[target] = revive_at
    return plan


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------


@dataclass
class _Attempt:
    label: str
    done: bool = False
    result: object = None


class AttemptTracker:
    """Registers connect attempts and records which ones terminated.

    The harness's first invariant is *liveness*: under any fault plan, every
    attempt must eventually call back — success, fallback, or failure — never
    silently hang.  Pass :meth:`expect`'s return value wherever the API wants
    an ``on_result`` / completion callback.
    """

    def __init__(self) -> None:
        self.attempts: List[_Attempt] = []

    def expect(self, label: str):
        """Declare one attempt; returns the callback that completes it.

        The callback tolerates any argument shape (result objects, sessions,
        nothing at all) and may fire multiple times (ladder recoveries) —
        only the first firing marks termination.
        """
        record = _Attempt(label=label)
        self.attempts.append(record)

        def complete(*args) -> None:
            record.done = True
            if args:
                record.result = args[0]

        return complete

    @property
    def unfinished(self) -> List[str]:
        return [a.label for a in self.attempts if not a.done]

    @property
    def all_terminated(self) -> bool:
        return not self.unfinished

    def __repr__(self) -> str:
        return (
            f"AttemptTracker({len(self.attempts)} attempts, "
            f"{len(self.unfinished)} unfinished)"
        )


def check_invariants(
    net: "Network",
    nats: Iterable[object] = (),
    attempts: Optional[AttemptTracker] = None,
    pending_timer_cap: Optional[int] = None,
    nat_table_cap: int = 256,
    leak_probes: Iterable[object] = (),
) -> List[str]:
    """Evaluate the global invariants; returns human-readable violations.

    Args:
        net: the network under test (its scheduler is inspected).
        nats: NAT devices (anything with a ``table`` supporting ``len``).
        attempts: if given, every registered attempt must have terminated.
        pending_timer_cap: if given, at most this many *active* timers may
            remain in the scheduler.  Check it after shutting the actors
            down — a bounded residue (e.g. TIME_WAIT timers) is normal, an
            ever-growing heap is a leak.
        nat_table_cap: upper bound on any NAT's mapping-table size; unbounded
            growth means expiry timers were lost.  When a NAT declares its
            own ``table.capacity`` (adversarial hardening, see
            :mod:`repro.netsim.adversary`) that bound is enforced instead —
            a flood must never push a table past its configured memory.
        leak_probes: :class:`~repro.netsim.adversary.LeakProbe` instances (or
            anything with a ``violations`` list); any cross-peer payload
            leak they witnessed becomes an invariant violation.
    """
    violations: List[str] = []
    if attempts is not None:
        for label in attempts.unfinished:
            violations.append(f"connect attempt {label!r} never terminated")
    if pending_timer_cap is not None:
        pending = net.scheduler.pending
        if pending > pending_timer_cap:
            violations.append(
                f"timer leak: {pending} active timers remain "
                f"(cap {pending_timer_cap})"
            )
    for nat in nats:
        table = getattr(nat, "table", None)
        if table is None:
            continue
        name = getattr(nat, "name", repr(nat))
        size = len(table)
        cap = getattr(table, "capacity", None)
        if cap is None:
            cap = nat_table_cap
        if size > cap:
            violations.append(
                f"NAT {name} table unbounded: {size} mappings (cap {cap})"
            )
        # Per-host quota: a quota the table advertises must actually hold.
        quota = getattr(table, "max_per_host", None)
        by_host = getattr(table, "_by_host", None)
        if quota is not None and by_host is not None:
            for host_key, owned in by_host.items():
                if len(owned) > quota:
                    violations.append(
                        f"NAT {name} quota violated: host {host_key} holds "
                        f"{len(owned)} mappings (quota {quota})"
                    )
        # Timer/table skew: more armed expiry timers than live mappings
        # means stale generations are still wired to fire.
        timers = getattr(table, "_timers", None)
        if timers is not None and len(timers) > size:
            violations.append(
                f"NAT {name} timer skew: {len(timers)} expiry timers for "
                f"{size} mappings"
            )
    for probe in leak_probes:
        violations.extend(getattr(probe, "violations", ()))
    return violations


def trace_fingerprint(net: "Network") -> List[tuple]:
    """Reduce a run's packet trace to a comparable fingerprint.

    Two runs of the same seed must produce identical fingerprints (the
    determinism invariant); enable tracing with ``net.trace.enable()`` before
    the run.  Times are rounded to nanoseconds to wash out float formatting
    noise without hiding real divergence.
    """
    return [
        (
            round(r.time, 9),
            r.link,
            r.sender,
            r.receiver,
            r.event,
            r.packet.proto.value,
            str(r.packet.src),
            str(r.packet.dst),
        )
        for r in net.trace.records
    ]
