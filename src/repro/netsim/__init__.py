"""Deterministic packet-level network simulator.

This package is the substrate the paper's techniques run on: a virtual-time
event scheduler (:mod:`repro.netsim.clock`), an IPv4 addressing model with
public/private realms (:mod:`repro.netsim.addresses`), a packet model covering
UDP, TCP, and ICMP (:mod:`repro.netsim.packet`), links with latency/jitter/loss
(:mod:`repro.netsim.link`), hosts and routers with longest-prefix-match
forwarding (:mod:`repro.netsim.node`, :mod:`repro.netsim.routing`), a
topology container (:mod:`repro.netsim.network`), deterministic fault
injection (:mod:`repro.netsim.faults`), and a chaos-soak harness that
composes randomized fault plans and checks global run invariants
(:mod:`repro.netsim.chaos`).
"""

from repro.netsim.addresses import (
    Endpoint,
    IPv4Address,
    IPv4Network,
    AddressPool,
    is_private,
)
from repro.netsim.chaos import (
    AttemptTracker,
    ChaosConfig,
    check_invariants,
    random_fault_plan,
    trace_fingerprint,
)
from repro.netsim.clock import Scheduler, Timer
from repro.netsim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.netsim.link import Link, LinkProfile
from repro.netsim.network import Network
from repro.netsim.node import Host, Node, Router
from repro.netsim.packet import IcmpError, IpProtocol, Packet, TcpFlags, TcpHeader
from repro.netsim.routing import RoutingTable
from repro.netsim.trace import PacketTrace, TraceRecord

__all__ = [
    "Endpoint",
    "IPv4Address",
    "IPv4Network",
    "AddressPool",
    "is_private",
    "Scheduler",
    "Timer",
    "AttemptTracker",
    "ChaosConfig",
    "check_invariants",
    "random_fault_plan",
    "trace_fingerprint",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Link",
    "LinkProfile",
    "Network",
    "Host",
    "Node",
    "Router",
    "IcmpError",
    "IpProtocol",
    "Packet",
    "TcpFlags",
    "TcpHeader",
    "RoutingTable",
    "PacketTrace",
    "TraceRecord",
]
