"""IPv4 addressing: addresses, prefixes, endpoints, realms, and pools.

The paper's Figure 1 architecture — one global realm plus many private realms
glued together by NATs — is modelled here.  Addresses are immutable value
objects backed by a 32-bit integer, cheap enough to live in every packet.

We implement our own small IPv4 types rather than using :mod:`ipaddress`
because NAT payload-mangling (paper §5.3) and address obfuscation (§3.1) need
direct byte-level access, and because packets are created by the million in
benchmarks — these types are ``__slots__``-lean and hashable.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Set, Tuple

from repro.util.errors import AddressError


class IPv4Address:
    """An immutable IPv4 address.

    Accepts dotted-quad strings, integers, 4-byte sequences, or another
    address.  Comparable, hashable, and ordered by numeric value.
    """

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise AddressError(f"IPv4 integer out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise AddressError(f"IPv4 bytes must be length 4, got {len(value)}")
            self._value = struct.unpack("!I", bytes(value))[0]
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return struct.pack("!I", self._value)

    @property
    def packed(self) -> bytes:
        """Network-order 4-byte encoding."""
        return bytes(self)

    def complement(self) -> "IPv4Address":
        """One's complement of the address (paper §3.1 obfuscation)."""
        return IPv4Address(self._value ^ 0xFFFFFFFF)

    def __eq__(self, other) -> bool:
        return isinstance(other, IPv4Address) and self._value == other._value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv4Address") -> bool:
        return self._value <= other._value

    def __hash__(self) -> int:
        # Hashed once per routing/NAT/link dict probe on the per-packet hot
        # path; hashing the bare int avoids a tuple allocation per probe.
        return hash(self._value)

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


def _parse_dotted_quad(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


class IPv4Network:
    """An IPv4 prefix (network address + mask length)."""

    __slots__ = ("_network", "_prefix_len")

    def __init__(self, spec, prefix_len: Optional[int] = None) -> None:
        if isinstance(spec, IPv4Network):
            self._network, self._prefix_len = spec._network, spec._prefix_len
            return
        if isinstance(spec, str) and prefix_len is None:
            if "/" not in spec:
                raise AddressError(f"prefix missing mask length: {spec!r}")
            addr_text, _, len_text = spec.partition("/")
            address = IPv4Address(addr_text)
            prefix_len = int(len_text)
        else:
            address = IPv4Address(spec)
            if prefix_len is None:
                prefix_len = 32
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len}")
        self._prefix_len = prefix_len
        self._network = int(address) & self.netmask_int()

    def netmask_int(self) -> int:
        if self._prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self._prefix_len)) & 0xFFFFFFFF

    @property
    def prefix_len(self) -> int:
        return self._prefix_len

    @property
    def network_address(self) -> IPv4Address:
        return IPv4Address(self._network)

    @property
    def broadcast_address(self) -> IPv4Address:
        return IPv4Address(self._network | (~self.netmask_int() & 0xFFFFFFFF))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self._prefix_len)

    def __contains__(self, address) -> bool:
        return (int(IPv4Address(address)) & self.netmask_int()) == self._network

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate usable host addresses (excludes network/broadcast on /30-)."""
        first, last = self._network, int(self.broadcast_address)
        if self._prefix_len <= 30:
            first += 1
            last -= 1
        for value in range(first, last + 1):
            yield IPv4Address(value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IPv4Network)
            and self._network == other._network
            and self._prefix_len == other._prefix_len
        )

    def __hash__(self) -> int:
        return hash(("IPv4Network", self._network, self._prefix_len))

    def __str__(self) -> str:
        return f"{IPv4Address(self._network)}/{self._prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"


#: RFC 1918 private realms plus loopback; used by :func:`is_private`.
PRIVATE_NETWORKS: Tuple[IPv4Network, ...] = (
    IPv4Network("10.0.0.0/8"),
    IPv4Network("172.16.0.0/12"),
    IPv4Network("192.168.0.0/16"),
    IPv4Network("127.0.0.0/8"),
)


def is_private(address) -> bool:
    """True if *address* falls in an RFC 1918 (or loopback) realm."""
    addr = IPv4Address(address)
    return any(addr in net for net in PRIVATE_NETWORKS)


class Endpoint:
    """A transport session endpoint: (IP address, port) — paper §2.1."""

    __slots__ = ("ip", "port", "_key")

    def __init__(self, ip, port: int) -> None:
        object.__setattr__(self, "ip", IPv4Address(ip))
        if not 0 <= port <= 0xFFFF:
            raise AddressError(f"port out of range: {port}")
        object.__setattr__(self, "port", int(port))
        #: The 48-bit session key ``ip << 16 | port``, precomputed once.
        #: Every per-packet integer key in the system — NAT mapping activity,
        #: UDP demux, direct-dispatch entries — folds (ip, port) exactly this
        #: way, so hot paths read one slot instead of redoing the arithmetic
        #: (two attribute hops, a multiply, and an add) per packet.
        object.__setattr__(self, "_key", self.ip._value * 65536 + self.port)

    def __setattr__(self, name, value):
        raise AttributeError("Endpoint is immutable")

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse ``"1.2.3.4:5678"``."""
        host, sep, port_text = text.rpartition(":")
        if not sep or not port_text.isdigit():
            raise AddressError(f"malformed endpoint: {text!r}")
        return cls(host, int(port_text))

    @property
    def is_private(self) -> bool:
        return is_private(self.ip)

    def pack(self) -> bytes:
        """6-byte wire encoding: 4-byte IP + 2-byte port, network order."""
        return self.ip.packed + struct.pack("!H", self.port)

    @classmethod
    def unpack(cls, data: bytes) -> "Endpoint":
        if len(data) != 6:
            raise AddressError(f"endpoint encoding must be 6 bytes, got {len(data)}")
        return cls(data[:4], struct.unpack("!H", data[4:])[0])

    def obfuscated(self) -> "Endpoint":
        """Endpoint with one's-complement IP (paper §3.1 / §5.3 defence)."""
        return Endpoint(self.ip.complement(), self.port)

    def __reduce__(self):
        # The immutable __setattr__ defeats pickle's default slot restore;
        # rebuild through the constructor instead (fleet workers ship
        # NatCheckReports, which embed Endpoints, back across the pool).
        return (Endpoint, (self.ip, self.port))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Endpoint)
            and self.ip == other.ip
            and self.port == other.port
        )

    def __lt__(self, other: "Endpoint") -> bool:
        return (self.ip, self.port) < (other.ip, other.port)

    def __hash__(self) -> int:
        # Endpoints key NAT mapping and socket-demux dicts probed per packet;
        # the precomputed fold means no tuple (or nested IPv4Address tuple
        # hash) is built per probe.
        return hash(self._key)

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    def __repr__(self) -> str:
        return f"Endpoint({str(self)!r})"


class AddressPool:
    """Allocates host addresses from a prefix, in order, with release.

    NAT devices use one pool per private realm to play DHCP server (the paper
    notes NATs "hand out IP addresses in a fairly deterministic way" — §3.4,
    which is what makes private-endpoint collisions likely).
    """

    def __init__(self, network: IPv4Network, reserved: Optional[List] = None) -> None:
        self.network = IPv4Network(network)
        self._reserved: Set[IPv4Address] = {IPv4Address(a) for a in (reserved or [])}
        self._allocated: Set[IPv4Address] = set()
        self._cursor = iter(self.network.hosts())

    def allocate(self) -> IPv4Address:
        """Return the next free address; raises AddressError when exhausted."""
        for address in self._cursor:
            if address in self._reserved or address in self._allocated:
                continue
            self._allocated.add(address)
            return address
        raise AddressError(f"address pool {self.network} exhausted")

    def release(self, address) -> None:
        """Return an address to the pool (it will not be re-issued until the
        cursor wraps; deterministic allocation order is preserved)."""
        self._allocated.discard(IPv4Address(address))

    @property
    def allocated(self) -> Set[IPv4Address]:
        return set(self._allocated)
