"""Deterministic fault injection: scripted failures on a running topology.

The paper's techniques only matter because networks are hostile: NATs lose
state when they reboot, idle timeouts silently kill punched holes, last-mile
links flap and lose packets in bursts.  This module turns those events into
first-class scripted objects so scenarios, tests, and benchmarks can declare
a *fault schedule* next to the topology and replay it deterministically —
every fault fires off the shared virtual clock, and all stochastic link
misbehaviour (burst loss, duplication, reordering — see
:class:`~repro.netsim.link.LinkProfile`) draws from the run's seeded RNG.

Fault catalog:

=================  ======================================================
``link-down``      Take a link down; in-flight packets are dropped.
``link-up``        Bring a link back up.
``link-flap``      ``down`` now, ``up`` after ``arg`` seconds (default 1.0).
``nat-reboot``     :meth:`NatDevice.reset_state`: all mappings lost, expiry
                   timers cancelled, port base bumped (``arg`` overrides the
                   new base).
``server-restart`` Call ``restart()`` on an application-level actor (e.g. a
                   :class:`~repro.core.rendezvous.RendezvousServer`) passed
                   via ``targets=``.
``server-kill``    Call ``stop()`` on an application-level actor: its
                   sockets close, so probes draw silence (UDP) or RSTs
                   (TCP) until a ``server-revive``.
``server-revive``  Call ``start()`` on a killed actor: sockets rebind, all
                   previous state forgotten.
=================  ======================================================

Typical use::

    plan = FaultPlan([
        (5.0, "link-flap", "backbone", 0.5),
        (12.0, "nat-reboot", "NAT-A"),
        (20.0, "server-restart", "S"),
    ])
    injector = plan.schedule(net, targets={"S": server})
    net.run_until(60.0)
    assert injector.injected[1].fault == "nat-reboot"

Every injected fault increments ``faults.injected{fault=}`` in the network's
metrics registry and is appended to :attr:`FaultInjector.injected` for
assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Network

FAULT_LINK_DOWN = "link-down"
FAULT_LINK_UP = "link-up"
FAULT_LINK_FLAP = "link-flap"
FAULT_NAT_REBOOT = "nat-reboot"
FAULT_SERVER_RESTART = "server-restart"
FAULT_SERVER_KILL = "server-kill"
FAULT_SERVER_REVIVE = "server-revive"

KNOWN_FAULTS = (
    FAULT_LINK_DOWN,
    FAULT_LINK_UP,
    FAULT_LINK_FLAP,
    FAULT_NAT_REBOOT,
    FAULT_SERVER_RESTART,
    FAULT_SERVER_KILL,
    FAULT_SERVER_REVIVE,
)

#: A link stays down this long when a ``link-flap`` gives no duration.
DEFAULT_FLAP_SECONDS = 1.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *fault* hits *target* at virtual time *time*.

    ``arg`` is fault-specific: the flap duration for ``link-flap``, the new
    port base for ``nat-reboot``; ignored by the others.
    """

    time: float
    fault: str
    target: str
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative: {self.time}")
        if self.fault not in KNOWN_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; expected one of {KNOWN_FAULTS}"
            )


PlanEntry = Union[FaultEvent, Sequence]


class FaultPlan:
    """A declarative fault schedule: an ordered list of :class:`FaultEvent`.

    Entries may be ``FaultEvent`` instances or plain ``(time, fault, target)``
    / ``(time, fault, target, arg)`` tuples.  Same-time faults fire in
    declaration order (the scheduler breaks ties by insertion), so a plan is
    fully deterministic.
    """

    def __init__(self, entries: Iterable[PlanEntry] = ()) -> None:
        self.events: List[FaultEvent] = []
        for entry in entries:
            if isinstance(entry, FaultEvent):
                self.events.append(entry)
            else:
                self.events.append(FaultEvent(*entry))

    def add(self, time: float, fault: str, target: str, arg: Optional[float] = None) -> "FaultPlan":
        """Append one fault; chainable."""
        self.events.append(FaultEvent(time, fault, target, arg))
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def schedule(
        self,
        net: "Network",
        targets: Optional[Dict[str, object]] = None,
    ) -> "FaultInjector":
        """Arm the plan on *net*'s scheduler; returns the live injector.

        *targets* maps names to application-level actors (anything with a
        ``restart()``) that faults like ``server-restart`` address — they are
        not netsim nodes, so the network cannot resolve them itself.
        """
        injector = FaultInjector(net, targets)
        for event in self.events:
            injector.arm(event)
        return injector


class FaultInjector:
    """Applies armed :class:`FaultEvent`\\ s to a network as the clock reaches
    them.  Targets are resolved at fire time, so a plan can name nodes that
    are wired up after :meth:`FaultPlan.schedule`."""

    def __init__(self, net: "Network", targets: Optional[Dict[str, object]] = None) -> None:
        self.net = net
        self.targets = dict(targets or {})
        #: Events applied so far, in firing order.
        self.injected: List[FaultEvent] = []

    def arm(self, event: FaultEvent) -> None:
        """Schedule one event (absolute virtual time)."""
        self.net.scheduler.call_at(event.time, self._fire, event)

    def _fire(self, event: FaultEvent) -> None:
        self._apply(event)
        self.injected.append(event)
        self.net.metrics.counter("faults.injected", fault=event.fault).inc()
        flight = self.net.flight
        if flight is not None:
            # Context-free: a fault is relevant to every attempt whose
            # window it lands in, so attribution matches it by time.
            flight.record_global(
                "fault", fault=event.fault, target=event.target, arg=event.arg
            )

    def _apply(self, event: FaultEvent) -> None:
        if event.fault in (FAULT_LINK_DOWN, FAULT_LINK_UP, FAULT_LINK_FLAP):
            link = self.net.links.get(event.target)
            if link is None:
                raise KeyError(f"fault targets unknown link {event.target!r}")
            if event.fault == FAULT_LINK_UP:
                link.up()
            else:
                link.down()
                if event.fault == FAULT_LINK_FLAP:
                    duration = event.arg if event.arg is not None else DEFAULT_FLAP_SECONDS
                    self.net.scheduler.call_later(duration, link.up)
        elif event.fault == FAULT_NAT_REBOOT:
            node = self.targets.get(event.target) or self.net.nodes.get(event.target)
            if node is None or not hasattr(node, "reset_state"):
                raise KeyError(f"fault targets unknown NAT {event.target!r}")
            port_base = int(event.arg) if event.arg is not None else None
            node.reset_state(port_base=port_base)
        elif event.fault in (FAULT_SERVER_RESTART, FAULT_SERVER_KILL, FAULT_SERVER_REVIVE):
            method = {
                FAULT_SERVER_RESTART: "restart",
                FAULT_SERVER_KILL: "stop",
                FAULT_SERVER_REVIVE: "start",
            }[event.fault]
            actor = self.targets.get(event.target)
            if actor is None or not hasattr(actor, method):
                raise KeyError(
                    f"fault targets unknown actor {event.target!r}; pass it "
                    f"via FaultPlan.schedule(net, targets={{name: actor}})"
                )
            getattr(actor, method)()

    def __repr__(self) -> str:
        return f"FaultInjector(injected={len(self.injected)})"
