"""Adversarial workloads: scripted attacks against live NAT scenarios.

The chaos harness (:mod:`repro.netsim.faults`, :mod:`repro.netsim.chaos`)
models networks that are unreliable but honest.  This module models networks
that are *hostile*, following the ReDAN attack taxonomy (arXiv 2410.21984)
against the paper's hole-punched sessions:

=====================  ======================================================
``exhaustion-flood``   :class:`ExhaustionFlood` — a host behind (or in front
                       of) the NAT churns fresh ``NatTable`` allocations until
                       translation memory / the dynamic port range is gone,
                       starving legitimate punches.  Defense:
                       ``NatBehavior.max_mappings_per_host`` quotas.
``spoofed-rst``        :class:`SpoofedRstInjector` — an off-path public host
                       forges the peer's source endpoint and sweeps guessed
                       public ports with RST segments (and optionally ICMP
                       errors) to tear down established punched sessions.
                       Defense: ``NatBehavior.rst_seq_validation`` /
                       ``icmp_validation`` plus the TCP stack's
                       ``rst_seq_validation``.
``port-prediction``    :class:`PortPredictionRacer` — a host behind the same
                       sequential-allocation symmetric NAT races the
                       legitimate peer by burning predicted ports during the
                       punch window (§5.1's prediction assumption turned into
                       an attack surface).  Defense: per-host quotas (the
                       racer is refused before the counter advances) or
                       ``PortAllocation.RANDOM``.
=====================  ======================================================

Attackers are deterministic: every port/sequence draw comes from a child of
the network's seeded RNG and every burst fires off the shared virtual clock,
so an attacked run replays byte-identically — the same property the fault
injector has.

Composition with the fault layer is structural: an attacker exposes
``start()`` / ``stop()``, the exact actor protocol
:class:`~repro.netsim.faults.FaultPlan` drives via ``server-kill`` /
``server-revive`` targets, so a plan can switch attacks on and off mid-run
next to link flaps and NAT reboots::

    attacker = ExhaustionFlood(net, host=mole, nat=nat_a)
    plan = FaultPlan([(5.0, "server-kill", "flood"), ...])
    scenario.inject_faults(plan, extra_targets={"flood": attacker})

Every burst is recorded context-free in the flight recorder
(``kind="attack"``), so the attribution rules in
:mod:`repro.obs.attribution` can match attacks to the connect/session
attempts whose windows they land in (the ``mapping-exhausted`` and
``spoofed-reset`` taxonomy categories).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.netsim.addresses import Endpoint, IPv4Address
from repro.netsim.node import Host
from repro.netsim.packet import (
    IcmpError,
    IcmpType,
    IpProtocol,
    Packet,
    TcpFlags,
    tcp_packet,
    udp_packet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nat.device import NatDevice
    from repro.netsim.network import Network

#: A flood destination nobody answers (TEST-NET-3): packets die on the
#: backbone, but the mapping was already allocated by then.
DARK_ADDRESS = "203.0.113.1"

FAMILY_EXHAUSTION = "exhaustion-flood"
FAMILY_SPOOFED_RST = "spoofed-rst"
FAMILY_PORT_PREDICTION = "port-prediction"


class Attacker:
    """Base class: a deterministic, clock-driven traffic source.

    Subclasses implement :meth:`_burst` (one volley of attack packets).
    ``start()``/``stop()`` make an attacker a valid ``server-kill`` /
    ``server-revive`` target for :class:`~repro.netsim.faults.FaultPlan`.
    """

    family = "abstract"

    def __init__(
        self,
        net: "Network",
        name: str,
        interval: float = 0.25,
        burst: int = 32,
    ) -> None:
        self.net = net
        self.name = name
        self.interval = interval
        self.burst = burst
        self.rng = net.rng.child(f"adversary/{name}")
        self.active = False
        self.packets_sent = 0
        self.bursts_fired = 0
        self._timer = None
        self._attempt = None

    # -- lifecycle (FaultPlan actor protocol) --------------------------------

    def start(self) -> None:
        """Begin attacking now; idempotent."""
        if self.active:
            return
        self.active = True
        flight = self.net.flight
        if flight is not None and self._attempt is None:
            # Own causal context: forged packets are stamped with this
            # attempt, so their downstream drops attribute to the *attack*,
            # not to whichever victim attempt happens to overlap in time.
            saved = flight.scheduler.context
            self._attempt = flight.attempt(
                f"attack.{self.family}", attacker=self.name
            )
            flight.scheduler.context = saved
        self._schedule()

    def stop(self) -> None:
        """Cease fire; idempotent, restartable."""
        self.active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        flight = self.net.flight
        if flight is not None and self._attempt is not None:
            flight.finish(self._attempt, "stopped", packets=self.packets_sent)
            self._attempt = None

    def arm(self, start: float, duration: Optional[float] = None) -> "Attacker":
        """Schedule ``start()`` at absolute virtual time *start* (and
        ``stop()`` after *duration*, if given); chainable."""
        self.net.scheduler.call_at(start, self.start)
        if duration is not None:
            self.net.scheduler.call_at(start + duration, self.stop)
        return self

    # -- machinery -----------------------------------------------------------

    def _schedule(self) -> None:
        self._timer = self.net.scheduler.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if not self.active:
            return
        sent = self._burst()
        self.packets_sent += sent
        self.bursts_fired += 1
        self.net.metrics.counter("attack.bursts", family=self.family).inc()
        flight = self.net.flight
        if flight is not None:
            # Context-free, like fault events: an attack burst is evidence
            # for every attempt whose window it lands in.
            flight.record_global(
                "attack",
                family=self.family,
                attacker=self.name,
                packets=sent,
                **self._burst_tags(),
            )
        self._schedule()

    def _burst(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _burst_tags(self) -> dict:
        return {}

    def _launch(self, host: Host, packet: Packet) -> None:
        """Inject one forged packet, flow-stamped with the attack attempt."""
        if self._attempt is not None:
            packet.flow = self._attempt.id
        host.send(packet)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name}, active={self.active}, "
            f"sent={self.packets_sent})"
        )


class _ChurnAttacker(Attacker):
    """Shared machinery for attacks that burn NAT allocations: UDP datagrams
    from ever-fresh source ports (and slowly rotating destinations, so even
    symmetric tables see a new key per packet)."""

    def __init__(
        self,
        net: "Network",
        host: Host,
        nat: "NatDevice",
        name: str,
        interval: float = 0.25,
        burst: int = 32,
        remote_ip: str = DARK_ADDRESS,
        src_port_base: int = 20000,
    ) -> None:
        super().__init__(net, name, interval=interval, burst=burst)
        self.host = host
        self.nat = nat
        self.remote_ip = IPv4Address(remote_ip)
        self._src_ip = host.interfaces["eth0"].ip
        self._src_port = src_port_base
        self._src_port_base = src_port_base
        self._dst_port = 40000

    def _burst(self) -> int:
        src_ip = self._src_ip
        remote_ip = self.remote_ip
        for _ in range(self.burst):
            src = Endpoint(src_ip, self._src_port)
            self._src_port += 1
            if self._src_port > 0xFFFF:
                # Wrap onto a fresh destination port so the churned keys stay
                # distinct for cone *and* symmetric tables.
                self._src_port = self._src_port_base
                self._dst_port += 1
            self._launch(
                self.host, udp_packet(src, Endpoint(remote_ip, self._dst_port))
            )
        return self.burst

    def _burst_tags(self) -> dict:
        return {"target": self.nat.name}


class ExhaustionFlood(_ChurnAttacker):
    """Mapping-table exhaustion flood (ReDAN family 1).

    Behind the NAT (the usual placement — an untrusted app or compromised
    box in the private realm), every datagram from a fresh source port burns
    one ``NatTable`` allocation; against a box with finite
    ``table_capacity`` the table fills and legitimate punches start dying
    with ``table-exhausted`` drops.  A per-host quota
    (``max_mappings_per_host`` + ``QuotaPolicy.REFUSE``) caps the damage at
    the attacker's quota.

    Attach the attacking host with :func:`attach_lan_attacker`; in-front
    placement (a public host hammering the NAT's WAN address) exercises the
    inbound drop path instead — inbound traffic never allocates state, which
    is itself an invariant the soak asserts.
    """

    family = FAMILY_EXHAUSTION


class PortPredictionRacer(_ChurnAttacker):
    """Port-prediction race (ReDAN family 3, §5.1 inverted).

    On a sequential-allocation symmetric NAT the next public port is
    predictable — that is exactly what the legitimate peer's punch relies
    on.  A co-resident attacker churning allocations during the punch window
    advances the allocator past every predicted candidate, so the peer's
    probes land on dead ports.  With a per-host quota the racer is refused
    *before* the allocator advances (the quota check precedes port
    allocation), so predictions hold; ``PortAllocation.RANDOM`` removes the
    predictability altogether (and with it, symmetric punchability).
    """

    family = FAMILY_PORT_PREDICTION


class SpoofedRstInjector(Attacker):
    """Off-path spoofed RST / ICMP injection (ReDAN family 2).

    The attacker sits on the public backbone, forges the victim's *peer* as
    the source endpoint (so the packet passes address/port-restricted
    inbound filtering) and sweeps guessed public ports on the target NAT
    with RST segments carrying attacker-chosen sequence numbers.  An
    unhardened NAT forwards the RST (and begins its close-linger teardown);
    an unhardened TCP stack honours any RST — the punched stream dies.

    With ``NatBehavior.rst_seq_validation`` the NAT only forwards RSTs whose
    sequence number matches the last ACK the private host sent
    (``rst-invalid`` drops otherwise); with the stack's
    ``rst_seq_validation`` a forged RST must also hit ``rcv_nxt`` exactly.

    With ``spoof_icmp=True`` each burst also forges ICMP errors quoting the
    guessed mapping as ``original_src`` and *known_remote* as
    ``original_dst`` (the well-known rendezvous endpoint — the one remote an
    off-path attacker can always name).  ``NatBehavior.icmp_validation``
    drops quotes for remotes the mapping never contacted (``icmp-invalid``);
    the stack's ``icmp_validation`` downgrades ICMP in SYN_SENT to a soft
    error.
    """

    family = FAMILY_SPOOFED_RST

    def __init__(
        self,
        net: "Network",
        host: Host,
        nat: "NatDevice",
        forged_src: Endpoint,
        name: str = "spoofer",
        interval: float = 0.25,
        burst: int = 16,
        port_center: Optional[int] = None,
        sweep_width: int = 32,
        spoof_icmp: bool = False,
        known_remote: Optional[Endpoint] = None,
    ) -> None:
        super().__init__(net, name, interval=interval, burst=burst)
        self.host = host
        self.nat = nat
        self.forged_src = forged_src
        self.spoof_icmp = spoof_icmp
        self.known_remote = known_remote if known_remote is not None else forged_src
        self._target_ip = nat.public_ip
        base = port_center if port_center is not None else nat.behavior.port_base
        self.sweep_ports: List[int] = [
            ((base + offset - 1) & 0xFFFF) + 1 for offset in range(sweep_width)
        ]
        self._sweep_idx = 0

    def _burst(self) -> int:
        sent = 0
        for _ in range(self.burst):
            port = self.sweep_ports[self._sweep_idx % len(self.sweep_ports)]
            self._sweep_idx += 1
            dst = Endpoint(self._target_ip, port)
            # Off-path: the 32-bit sequence number is a guess.
            rst = tcp_packet(
                self.forged_src,
                dst,
                TcpFlags.RST,
                seq=self.rng.randint(0, 0xFFFFFFFF),
            )
            self._launch(self.host, rst)
            sent += 1
            if self.spoof_icmp:
                icmp = Packet(
                    proto=IpProtocol.ICMP,
                    src=Endpoint(self.host.interfaces["eth0"].ip, 0),
                    dst=Endpoint(self._target_ip, 0),
                    icmp=IcmpError(
                        icmp_type=IcmpType.PORT_UNREACHABLE,
                        original_proto=IpProtocol.TCP,
                        original_src=dst,
                        original_dst=self.known_remote,
                    ),
                )
                self._launch(self.host, icmp)
                sent += 1
        return sent

    def _burst_tags(self) -> dict:
        return {
            "target": self.nat.name,
            "forged_src": str(self.forged_src),
            "icmp": self.spoof_icmp,
        }


# ---------------------------------------------------------------------------
# Placement helpers
# ---------------------------------------------------------------------------


def attach_lan_attacker(
    net: "Network",
    nat: "NatDevice",
    ip: str,
    label: str = "mole",
    lan_name: str = "lan0",
) -> Host:
    """Attach a raw host to *nat*'s private realm (no transport stack — the
    attacker speaks packets, not sockets).  Returns the host."""
    lan = nat.interfaces[lan_name]
    return net.add_host(
        label, ip=ip, network=str(lan.network), link=lan.link, gateway=lan.ip
    )


def attach_wan_attacker(
    net: "Network",
    backbone,
    ip: str = "198.51.100.66",
    label: str = "offpath",
) -> Host:
    """Attach a raw public host (the off-path spoofing position)."""
    return net.add_host(label, ip=ip, network="0.0.0.0/0", link=backbone)


# ---------------------------------------------------------------------------
# Cross-peer leak probe (the soak invariant's evidence collector)
# ---------------------------------------------------------------------------


class LeakProbe:
    """Asserts no cross-peer data leak: every payload delivered on a watched
    session/stream must carry the stamp of the peer that session belongs to.

    Stamp outbound data with :meth:`stamp`; wire delivery with
    :meth:`watch`.  Violations (payloads from the wrong peer, or unstamped
    attacker bytes that reached an application) accumulate in
    :attr:`violations`, formatted with the offending fingerprint, and feed
    ``chaos.check_invariants(..., leak_probes=[probe])``.
    """

    def __init__(self) -> None:
        self.violations: List[str] = []
        self.payloads_checked = 0

    @staticmethod
    def stamp(sender_id: int, payload: bytes = b"") -> bytes:
        return b"from:%d:" % sender_id + payload

    def watch(self, session, expected_sender: int, label: str) -> None:
        """Attach to anything with an ``on_data`` handler slot."""

        def on_data(payload: bytes) -> None:
            self.payloads_checked += 1
            expected = b"from:%d:" % expected_sender
            if not payload.startswith(expected):
                self.violations.append(
                    f"cross-peer leak on {label}: expected payload from peer "
                    f"{expected_sender}, got {payload[:32]!r}"
                )

        session.on_data = on_data
