"""Links: L2 segments connecting node interfaces.

A :class:`Link` models either a point-to-point wire or a small broadcast
segment (a home LAN behind a NAT).  Delivery is next-hop-addressed: the
sending node resolves the next-hop IP (its routing decision) and the link
delivers to whichever attached interface owns that IP — an ARP-free
simplification that preserves everything the paper's scenarios need,
including "stray traffic reaches the wrong host with the same private IP"
(§3.4): two *different* links can each have a host at 10.1.1.3.

Latency, jitter, and loss come from a :class:`LinkProfile`; all randomness is
drawn from the owning network's seeded RNG, so runs are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Address
from repro.netsim.clock import Scheduler, Timer
from repro.netsim.packet import IpProtocol, Packet
from repro.obs.metrics import Counter
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.node import Node
    from repro.netsim.trace import PacketTrace


@dataclass(frozen=True)
class LinkProfile:
    """Propagation characteristics of a link.

    Attributes:
        latency: one-way delay in seconds.
        jitter: maximum extra uniform random delay in seconds.
        loss: independent per-packet drop probability in [0, 1].
        bandwidth_bps: serialization rate in bits/second; None = infinite.
            With a finite rate the link models a FIFO transmit queue: each
            packet occupies the wire for ``size*8/bandwidth`` seconds and
            later packets wait their turn (this is what makes "relaying
            consumes the server's bandwidth", §2.2, measurable).
        max_queue_delay: tail-drop threshold — a packet that would wait
            longer than this in the transmit queue is dropped.  None = an
            unbounded queue.
        burst_enter: per-packet probability of the Gilbert-Elliott loss model
            transitioning from the good state into the bad (bursty) state.
            0 (default) disables the model entirely — no extra RNG draws, so
            existing seeds replay unchanged.
        burst_exit: per-packet probability of leaving the bad state.  Must be
            positive when ``burst_enter`` is, or a burst would never end.
        burst_loss: drop probability while in the bad state (the good state
            uses the independent ``loss`` field).
        duplicate: per-packet probability of delivering a second copy — the
            duplicated datagram a hole-punching protocol must tolerate.
        reorder: per-packet probability of delaying a packet by an extra
            ``reorder_delay`` seconds, letting later packets overtake it.
        reorder_delay: the extra delay applied to reordered packets.
    """

    latency: float = 0.010
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth_bps: Optional[float] = None
    max_queue_delay: Optional[float] = None
    burst_enter: float = 0.0
    burst_exit: float = 0.0
    burst_loss: float = 1.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency/jitter must be non-negative")
        for name in ("loss", "burst_enter", "burst_exit", "burst_loss",
                     "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability out of range: {value}")
        if self.burst_enter > 0 and self.burst_exit <= 0:
            raise ValueError("burst_enter requires a positive burst_exit")
        if self.reorder > 0 and self.reorder_delay <= 0:
            raise ValueError("reorder requires a positive reorder_delay")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.max_queue_delay is not None and self.max_queue_delay < 0:
            raise ValueError("max_queue_delay must be non-negative")


#: Typical last-mile consumer link.
CONSUMER_LINK = LinkProfile(latency=0.015, jitter=0.005)
#: Low-latency LAN segment.
LAN_LINK = LinkProfile(latency=0.0005)
#: Well-connected server uplink.
BACKBONE_LINK = LinkProfile(latency=0.005)


class Link:
    """An L2 segment with one or more attached node interfaces."""

    #: Class-wide switch for the statistical fast path.  The trace-identity
    #: suite flips this off to prove the fast path is behaviourally inert;
    #: everything else leaves it on.
    fast_path_enabled = True

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "link",
        profile: Optional[LinkProfile] = None,
        rng: Optional[SeededRng] = None,
        trace: Optional["PacketTrace"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self._profile = profile or LinkProfile()
        self._rng = rng or SeededRng(0, f"link/{name}")
        self._trace = trace
        #: FlightRecorder set by ``Network.attach_flight``; None (the
        #: default) keeps every drop site to a single attribute test.
        self._flight = None
        self._attachments: List[Tuple["Node", IPv4Address]] = []
        self._owner_index: Dict[IPv4Address, "Node"] = {}
        #: Hot mirror of ``_owner_index`` keyed by the raw 32-bit address
        #: value: int probes hash at C speed, IPv4Address probes pay a
        #: Python-level ``__hash__`` call per packet.
        self._owner_values: Dict[int, "Node"] = {}
        self._busy_until = 0.0
        self._up = True
        self._ge_bad = False  # Gilbert-Elliott state: currently in a burst?
        #: Scheduled-but-undelivered packets: seq -> (timer, sender, receiver,
        #: packet).  Needed so link flaps and node detachment can drop
        #: in-flight traffic instead of delivering to a dead segment/host.
        self._in_flight: Dict[int, Tuple[Timer, "Node", "Node", Packet]] = {}
        self._flight_seq = itertools.count()
        #: Pending coalesced-delivery timers (fast path only; see
        #: Scheduler.call_later_batched), insertion-ordered so flap/detach
        #: drops replay in schedule order.  Items are (sender, receiver,
        #: packet, dispatch-entry) 4-tuples; a detached entry is nulled in
        #: place.
        self._batches: Dict[int, Timer] = {}
        #: Direct-dispatch memo: ``dst._key * 4 + proto.wire_index`` ->
        #: ``(deliver, delivery_version, consuming, receiver, nh_value)``.
        #: *deliver* is the callable the drain loop invokes instead of the
        #: ``receiver.receive`` trampoline (None = always slow path, e.g.
        #: forwarding receivers); *delivery_version* is the receiver's
        #: :attr:`Node._delivery_version` at resolve time (None = never
        #: stale) and is re-checked both at transmit and at fire, so a stack
        #: detach or socket close between the two falls back to the slow
        #: path; *nh_value* is the raw next-hop IP the receiver was resolved
        #: from, so a transmit hit skips the owner-index probe.  Cleared
        #: whenever the attachment set changes — receiver identity per
        #: next-hop is part of what the entry memoises.
        self._dispatch: Dict[int, tuple] = {}
        self._open_batch: Optional[Timer] = None
        #: Scheduler tick at which ``_open_batch`` was created.  While the
        #: batch stays open the latency is constant (``_refresh_fast_path``
        #: closes it on any profile change), so ``_open_tick == now`` is
        #: equivalent to the full ``batch.when == now + latency`` compare.
        self._open_tick = -1.0
        self._batch_ids = itertools.count()
        self.packets_dropped = 0
        self.queue_drops = 0
        self.flap_drops = 0
        self.burst_drops = 0
        self.duplicates_delivered = 0
        self.packets_reordered = 0
        self.bytes_sent = 0
        # Pre-bound per-protocol counter handles (one attribute add per
        # packet on the hot path); the owning network's collector reads the
        # dict views below at snapshot time.
        self._sent_handles: Dict[IpProtocol, Counter] = {
            proto: Counter("link.packets_sent", (("proto", proto.value),))
            for proto in IpProtocol
        }
        self._lost_handles: Dict[IpProtocol, Counter] = {
            proto: Counter("link.packets_lost", (("proto", proto.value),))
            for proto in IpProtocol
        }
        #: Dense ``wire_index``-ordered view of ``_sent_handles`` for the
        #: fast path (list index + direct ``.value`` bump, no enum hashing).
        self._sent_by_index: List[Counter] = [
            self._sent_handles[proto] for proto in IpProtocol
        ]
        self._refresh_fast_path()
        if trace is not None:
            trace.subscribe(self._refresh_fast_path)

    @property
    def packets_sent(self) -> int:
        """Total packets placed on the wire.

        Derived from the per-protocol counters — every wire path bumps
        exactly one per-proto handle, so the transmit hot path pays one
        counter write instead of two and this read-rare total sums at
        snapshot time.
        """
        return sum(counter.value for counter in self._sent_by_index)

    # -- statistical fast path ---------------------------------------------------

    @property
    def profile(self) -> LinkProfile:
        return self._profile

    @profile.setter
    def profile(self, value: LinkProfile) -> None:
        self._profile = value
        self._refresh_fast_path()

    def set_flight(self, flight) -> None:
        """Attach (or detach, with None) a flight recorder."""
        self._flight = flight
        self._refresh_fast_path()

    def _refresh_fast_path(self) -> None:
        """Re-evaluate the once-per-change gate for the per-packet fast path.

        The fast path is legal exactly when every per-packet branch of the
        slow path is statically known to be a no-op: link up, no flight
        recorder, trace absent or disabled, and a plain profile (no loss,
        burst, jitter, bandwidth, duplication, or reordering).  Zero-valued
        fault knobs draw no RNG on the slow path either (pinned by
        ``test_defaults_draw_no_rng``), so both paths consume identical RNG
        streams — the fast path is observably inert.

        Called from ``__init__``, the ``profile`` setter, :meth:`up` /
        :meth:`down`, :meth:`set_flight`, and trace enable/disable
        subscriptions; see docs/performance.md for the invalidation matrix.
        """
        p = self._profile
        self._fast = (
            self.fast_path_enabled
            and self._up
            and self._flight is None
            and (self._trace is None or not self._trace.enabled)
            and p.bandwidth_bps is None
            and not (
                p.loss or p.jitter or p.burst_enter or p.duplicate or p.reorder
            )
        )
        self._fast_latency = p.latency
        # Close any open coalescing batch: the tick-equality append check in
        # ``transmit`` assumes the latency has not changed since the batch
        # was created, and every latency-changing event funnels through here.
        self._open_batch = None

    @property
    def sent_by_proto(self) -> Dict[IpProtocol, int]:
        """Per-protocol sent counts (protocols actually seen only)."""
        return {p: c.value for p, c in self._sent_handles.items() if c.value}

    @property
    def lost_by_proto(self) -> Dict[IpProtocol, int]:
        """Per-protocol loss counts (protocols actually seen only)."""
        return {p: c.value for p, c in self._lost_handles.items() if c.value}

    def attach(self, node: "Node", ip) -> None:
        """Attach *node*'s interface at *ip* to this segment."""
        address = IPv4Address(ip)
        if address in self._owner_index:
            raise ValueError(f"duplicate IP {address} on link {self.name}")
        self._attachments.append((node, address))
        self._owner_index[address] = node
        self._owner_values[address._value] = node
        self._dispatch.clear()

    def detach(self, node: "Node") -> None:
        """Remove every attachment belonging to *node*.

        In-flight deliveries addressed to *node* are cancelled: a crashed or
        unplugged host must not keep receiving packets that were already on
        the wire when it left the segment.
        """
        self._attachments = [(n, ip) for n, ip in self._attachments if n is not node]
        self._owner_index = {ip: n for n, ip in self._attachments}
        self._owner_values = {ip._value: n for n, ip in self._attachments}
        self._dispatch.clear()
        for seq, (timer, sender, receiver, packet) in list(self._in_flight.items()):
            if receiver is node:
                timer.cancel()
                del self._in_flight[seq]
                self.packets_dropped += 1
                self._record(packet, sender, receiver, "detach-drop")
                self._flight_drop(packet, "detach-drop")
        for timer in self._batches.values():
            items = timer._items
            for i in range(timer._inext, len(items)):
                item = items[i]
                if item is not None and item[1] is node:
                    items[i] = None
                    self.packets_dropped += 1
                    self._record(item[2], item[0], node, "detach-drop")
                    self._flight_drop(item[2], "detach-drop")

    # -- link state (fault injection) -------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    def down(self) -> None:
        """Take the segment down: in-flight packets are dropped and further
        transmissions fail until :meth:`up`.  Idempotent.  The Gilbert-
        Elliott burst chain is reset: a carrier loss tears down whatever
        channel condition caused the burst, so the segment must not come
        back "mid-burst" from pre-flap traffic."""
        if not self._up:
            return
        self._up = False
        self._ge_bad = False
        for timer, sender, receiver, packet in self._in_flight.values():
            timer.cancel()
            self.packets_dropped += 1
            self.flap_drops += 1
            self._record(packet, sender, receiver, "flap-drop")
            self._flight_drop(packet, "flap-drop")
        self._in_flight.clear()
        for timer in self._batches.values():
            items = timer._items
            for i in range(timer._inext, len(items)):
                item = items[i]
                if item is not None:
                    self.packets_dropped += 1
                    self.flap_drops += 1
                    self._record(item[2], item[0], item[1], "flap-drop")
                    self._flight_drop(item[2], "flap-drop")
            timer.cancel()
        self._batches.clear()
        self._open_batch = None
        self._refresh_fast_path()

    def up(self) -> None:
        """Bring the segment back; the transmit queue restarts empty and the
        Gilbert-Elliott chain restarts in the good state."""
        if self._up:
            return
        self._up = True
        self._busy_until = 0.0
        self._ge_bad = False
        self._refresh_fast_path()

    @property
    def attached_nodes(self) -> List["Node"]:
        return [node for node, _ in self._attachments]

    def owner_of(self, ip) -> Optional["Node"]:
        """Node whose interface on this link owns *ip*, if any."""
        return self._owner_index.get(IPv4Address(ip))

    def transmit(self, packet: Packet, sender: "Node", next_hop_ip) -> bool:
        """Send *packet* toward the attached interface owning *next_hop_ip*.

        Returns True if delivery was scheduled; False if the next hop does not
        exist on this segment or the packet was lost.  Both cases are silent
        on the wire — exactly how a datagram to a non-existent private host
        behaves in the paper's §3.4 scenario.
        """
        if self._fast:
            # Statistical fast path: the gate (see _refresh_fast_path) has
            # already proven every fault/trace/flight branch below is a
            # no-op, so this block only does the work that observably
            # happens — counter bumps and a coalesced delivery timer.
            try:
                nh_value = next_hop_ip._value
            except AttributeError:  # next hop given as str/int/bytes
                nh_value = IPv4Address(next_hop_ip)._value
            proto = packet.proto
            # Resolve (or validate) the direct-dispatch entry for this flow.
            # The entry memoises both the next-hop owner and the local
            # delivery target, so a hit skips the owner-index probe here and
            # the full demux at fire time; a next-hop mismatch (two next
            # hops sharing a dst key on one segment) or a stale delivery
            # version re-resolves.
            entry = self._dispatch.get(packet.dst._key * 4 + proto.wire_index)
            if entry is None or entry[4] != nh_value:
                receiver = self._owner_values.get(nh_value)
                if receiver is None or receiver is sender:
                    self.packets_dropped += 1
                    return False
                entry = self._resolve_dispatch(packet.dst, proto, receiver, nh_value)
            else:
                receiver = entry[3]
                if receiver is sender:
                    self.packets_dropped += 1
                    return False
                version = entry[1]
                if version is not None and version != receiver._delivery_version:
                    entry = self._resolve_dispatch(packet.dst, proto, receiver, nh_value)
            self.bytes_sent += proto.header_bytes + len(packet.payload)
            self._sent_by_index[proto.wire_index].value += 1
            scheduler = self.scheduler
            batch = self._open_batch
            if (
                batch is not None
                and batch._bseq == scheduler._seq
                and not batch._fired
                and self._open_tick == scheduler._now
            ):
                # No timer was created since the batch's own, so this
                # delivery would have drawn the very next sequence number at
                # the same deadline — appending preserves fire order exactly.
                batch._items.append((sender, receiver, packet, entry))
            else:
                batches = self._batches
                # Batches drain in creation order (constant latency), so
                # purging spent timers from the front keeps the pending set
                # small on long runs.
                while batches:
                    bid0 = next(iter(batches))
                    if batches[bid0]._fired:
                        del batches[bid0]
                    else:
                        break
                batch = scheduler.call_later_batched(
                    self._fast_latency, self._fire_delivery
                )
                batch._bseq = scheduler._seq
                # Items are (sender, receiver, packet, entry) wire deliveries
                # and _fire_delivery does nothing else — let run_until's
                # drain loop dispatch into the receiver directly.
                batch._unpack = True
                batch._items.append((sender, receiver, packet, entry))
                batches[next(self._batch_ids)] = batch
                self._open_batch = batch
                self._open_tick = scheduler._now
            return True
        if not self._up:
            self.packets_dropped += 1
            self.flap_drops += 1
            self._record(packet, sender, None, "link-down")
            self._flight_drop(packet, "link-down")
            return False
        receiver = self._owner_index.get(IPv4Address(next_hop_ip))
        if receiver is None or receiver is sender:
            self.packets_dropped += 1
            self._record(packet, sender, None, "no-next-hop")
            self._flight_drop(packet, "no-next-hop")
            return False
        if not self._wire_one(packet, sender, receiver, 0.0, dup=False):
            return False
        if self.profile.duplicate and self._rng.chance(self.profile.duplicate):
            # A duplicated datagram trails its original by one extra latency
            # and is charged/checked like any other wire packet: it takes its
            # own loss and burst draws, pays the serialization charge, and
            # can tail-drop — a duplicate is not exempt from the link model.
            self._wire_one(packet, sender, receiver, self.profile.latency, dup=True)
        return True

    def _wire_one(
        self,
        packet: Packet,
        sender: "Node",
        receiver: "Node",
        extra_delay: float,
        dup: bool,
    ) -> bool:
        """Put one packet (original or duplicate copy) on the wire: fault
        draws, bandwidth charge, and delivery scheduling.  Returns True if a
        delivery was scheduled."""
        profile = self._profile
        if profile.loss and self._rng.chance(profile.loss):
            self.packets_dropped += 1
            self._lost_handles[packet.proto].inc()
            self._record(packet, sender, receiver, "lost")
            self._flight_drop(packet, "lost")
            return False
        if profile.burst_enter and self._ge_burst_drops(packet):
            self.packets_dropped += 1
            self.burst_drops += 1
            self._lost_handles[packet.proto].inc()
            self._record(packet, sender, receiver, "burst-lost")
            self._flight_drop(packet, "burst-lost")
            return False
        delay = profile.latency + extra_delay
        if profile.jitter:
            delay += self._rng.uniform(0.0, profile.jitter)
        if profile.bandwidth_bps is not None:
            now = self.scheduler.now
            queue_wait = max(0.0, self._busy_until - now)
            if (
                profile.max_queue_delay is not None
                and queue_wait > profile.max_queue_delay
            ):
                self.packets_dropped += 1
                self.queue_drops += 1
                self._record(packet, sender, receiver, "queue-drop")
                self._flight_drop(packet, "queue-drop")
                return False
            serialization = packet.size * 8 / profile.bandwidth_bps
            self._busy_until = now + queue_wait + serialization
            delay += queue_wait + serialization
        if profile.reorder and self._rng.chance(profile.reorder):
            delay += profile.reorder_delay
            self.packets_reordered += 1
        if dup:
            self.duplicates_delivered += 1
        self.bytes_sent += packet.size
        self._sent_handles[packet.proto].inc()
        self._record(packet, sender, receiver, "duplicated" if dup else "sent")
        self._schedule_delivery(packet, sender, receiver, delay)
        return True

    def _resolve_dispatch(
        self, dst, proto: IpProtocol, receiver: "Node", nh_value: int
    ) -> tuple:
        """Build and memoise the direct-dispatch entry for (dst, proto) via
        *receiver* — see the ``_dispatch`` attribute docs for the layout.

        Forwarding receivers (routers, NATs) get a permanent slow-path entry
        (``version`` None: ``forwards_packets`` is a class property, so the
        answer can never go stale); host receivers resolve through
        :meth:`Node.resolve_dispatch` and are pinned to the host's current
        delivery version.  *nh_value* — the raw next-hop IP the entry was
        resolved against — rides in slot 4 so a transmit hit can reuse the
        memoised receiver without re-probing the owner index.
        """
        if receiver.forwards_packets:
            entry = (None, None, False, receiver, nh_value)
        elif dst.ip._value not in receiver._local_ips:
            # Not locally addressed (the host will drop it): slow path, but
            # re-resolved if the host grows an interface.
            entry = (None, receiver._delivery_version, False, receiver, nh_value)
        else:
            deliver, consuming = receiver.resolve_dispatch(proto, dst)
            entry = (
                deliver,
                receiver._delivery_version,
                consuming,
                receiver,
                nh_value,
            )
        self._dispatch[dst._key * 4 + proto.wire_index] = entry
        return entry

    def _fire_delivery(self, item) -> None:
        """Deliver one coalesced-batch item (the scheduler fires one item per
        event; a nulled item was detach-dropped while in flight).  Always the
        receive() trampoline — step()-driven runs take this route and must
        stay observably identical to the drain loop's direct dispatch."""
        if item is not None:
            item[1].receive(item[2], self)

    def _ge_burst_drops(self, packet: Packet) -> bool:
        """Advance the Gilbert-Elliott two-state chain one packet and report
        whether the bad state claims this packet."""
        if self._ge_bad:
            if self._rng.chance(self.profile.burst_exit):
                self._ge_bad = False
        elif self._rng.chance(self.profile.burst_enter):
            self._ge_bad = True
        return self._ge_bad and self._rng.chance(self.profile.burst_loss)

    def _schedule_delivery(
        self, packet: Packet, sender: "Node", receiver: "Node", delay: float
    ) -> None:
        seq = next(self._flight_seq)
        timer = self.scheduler.call_later(delay, self._deliver, seq)
        self._in_flight[seq] = (timer, sender, receiver, packet)

    def _deliver(self, seq: int) -> None:
        _, _, receiver, packet = self._in_flight.pop(seq)
        receiver.receive(packet, self)

    def _flight_drop(self, packet: Packet, reason: str) -> None:
        """Flight-record a wire drop; drop paths only, never the send path."""
        if self._flight is not None:
            self._flight.packet_event(
                "link.drop", packet, link=self.name, reason=reason
            )

    def _record(self, packet: Packet, sender: "Node", receiver, event: str) -> None:
        if self._trace is not None:
            self._trace.record(
                time=self.scheduler.now,
                link=self.name,
                sender=sender.name,
                receiver=receiver.name if receiver is not None else None,
                event=event,
                packet=packet,
            )

    def __repr__(self) -> str:
        return f"Link({self.name!r}, attached={len(self._attachments)})"
