"""Links: L2 segments connecting node interfaces.

A :class:`Link` models either a point-to-point wire or a small broadcast
segment (a home LAN behind a NAT).  Delivery is next-hop-addressed: the
sending node resolves the next-hop IP (its routing decision) and the link
delivers to whichever attached interface owns that IP — an ARP-free
simplification that preserves everything the paper's scenarios need,
including "stray traffic reaches the wrong host with the same private IP"
(§3.4): two *different* links can each have a host at 10.1.1.3.

Latency, jitter, and loss come from a :class:`LinkProfile`; all randomness is
drawn from the owning network's seeded RNG, so runs are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Address
from repro.netsim.clock import Scheduler, Timer
from repro.netsim.packet import IpProtocol, Packet
from repro.obs.metrics import Counter
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.node import Node
    from repro.netsim.trace import PacketTrace


@dataclass(frozen=True)
class LinkProfile:
    """Propagation characteristics of a link.

    Attributes:
        latency: one-way delay in seconds.
        jitter: maximum extra uniform random delay in seconds.
        loss: independent per-packet drop probability in [0, 1].
        bandwidth_bps: serialization rate in bits/second; None = infinite.
            With a finite rate the link models a FIFO transmit queue: each
            packet occupies the wire for ``size*8/bandwidth`` seconds and
            later packets wait their turn (this is what makes "relaying
            consumes the server's bandwidth", §2.2, measurable).
        max_queue_delay: tail-drop threshold — a packet that would wait
            longer than this in the transmit queue is dropped.  None = an
            unbounded queue.
        burst_enter: per-packet probability of the Gilbert-Elliott loss model
            transitioning from the good state into the bad (bursty) state.
            0 (default) disables the model entirely — no extra RNG draws, so
            existing seeds replay unchanged.
        burst_exit: per-packet probability of leaving the bad state.  Must be
            positive when ``burst_enter`` is, or a burst would never end.
        burst_loss: drop probability while in the bad state (the good state
            uses the independent ``loss`` field).
        duplicate: per-packet probability of delivering a second copy — the
            duplicated datagram a hole-punching protocol must tolerate.
        reorder: per-packet probability of delaying a packet by an extra
            ``reorder_delay`` seconds, letting later packets overtake it.
        reorder_delay: the extra delay applied to reordered packets.
    """

    latency: float = 0.010
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth_bps: Optional[float] = None
    max_queue_delay: Optional[float] = None
    burst_enter: float = 0.0
    burst_exit: float = 0.0
    burst_loss: float = 1.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency/jitter must be non-negative")
        for name in ("loss", "burst_enter", "burst_exit", "burst_loss",
                     "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability out of range: {value}")
        if self.burst_enter > 0 and self.burst_exit <= 0:
            raise ValueError("burst_enter requires a positive burst_exit")
        if self.reorder > 0 and self.reorder_delay <= 0:
            raise ValueError("reorder requires a positive reorder_delay")
        if self.reorder_delay < 0:
            raise ValueError("reorder_delay must be non-negative")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.max_queue_delay is not None and self.max_queue_delay < 0:
            raise ValueError("max_queue_delay must be non-negative")


#: Typical last-mile consumer link.
CONSUMER_LINK = LinkProfile(latency=0.015, jitter=0.005)
#: Low-latency LAN segment.
LAN_LINK = LinkProfile(latency=0.0005)
#: Well-connected server uplink.
BACKBONE_LINK = LinkProfile(latency=0.005)


class Link:
    """An L2 segment with one or more attached node interfaces."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "link",
        profile: Optional[LinkProfile] = None,
        rng: Optional[SeededRng] = None,
        trace: Optional["PacketTrace"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.profile = profile or LinkProfile()
        self._rng = rng or SeededRng(0, f"link/{name}")
        self._trace = trace
        #: FlightRecorder set by ``Network.attach_flight``; None (the
        #: default) keeps every drop site to a single attribute test.
        self._flight = None
        self._attachments: List[Tuple["Node", IPv4Address]] = []
        self._owner_index: Dict[IPv4Address, "Node"] = {}
        self._busy_until = 0.0
        self._up = True
        self._ge_bad = False  # Gilbert-Elliott state: currently in a burst?
        #: Scheduled-but-undelivered packets: seq -> (timer, sender, receiver,
        #: packet).  Needed so link flaps and node detachment can drop
        #: in-flight traffic instead of delivering to a dead segment/host.
        self._in_flight: Dict[int, Tuple[Timer, "Node", "Node", Packet]] = {}
        self._flight_seq = itertools.count()
        self.packets_sent = 0
        self.packets_dropped = 0
        self.queue_drops = 0
        self.flap_drops = 0
        self.burst_drops = 0
        self.duplicates_delivered = 0
        self.packets_reordered = 0
        self.bytes_sent = 0
        # Pre-bound per-protocol counter handles (one attribute add per
        # packet on the hot path); the owning network's collector reads the
        # dict views below at snapshot time.
        self._sent_handles: Dict[IpProtocol, Counter] = {
            proto: Counter("link.packets_sent", (("proto", proto.value),))
            for proto in IpProtocol
        }
        self._lost_handles: Dict[IpProtocol, Counter] = {
            proto: Counter("link.packets_lost", (("proto", proto.value),))
            for proto in IpProtocol
        }

    @property
    def sent_by_proto(self) -> Dict[IpProtocol, int]:
        """Per-protocol sent counts (protocols actually seen only)."""
        return {p: c.value for p, c in self._sent_handles.items() if c.value}

    @property
    def lost_by_proto(self) -> Dict[IpProtocol, int]:
        """Per-protocol loss counts (protocols actually seen only)."""
        return {p: c.value for p, c in self._lost_handles.items() if c.value}

    def attach(self, node: "Node", ip) -> None:
        """Attach *node*'s interface at *ip* to this segment."""
        address = IPv4Address(ip)
        if address in self._owner_index:
            raise ValueError(f"duplicate IP {address} on link {self.name}")
        self._attachments.append((node, address))
        self._owner_index[address] = node

    def detach(self, node: "Node") -> None:
        """Remove every attachment belonging to *node*.

        In-flight deliveries addressed to *node* are cancelled: a crashed or
        unplugged host must not keep receiving packets that were already on
        the wire when it left the segment.
        """
        self._attachments = [(n, ip) for n, ip in self._attachments if n is not node]
        self._owner_index = {ip: n for n, ip in self._attachments}
        for seq, (timer, sender, receiver, packet) in list(self._in_flight.items()):
            if receiver is node:
                timer.cancel()
                del self._in_flight[seq]
                self.packets_dropped += 1
                self._record(packet, sender, receiver, "detach-drop")
                self._flight_drop(packet, "detach-drop")

    # -- link state (fault injection) -------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._up

    def down(self) -> None:
        """Take the segment down: in-flight packets are dropped and further
        transmissions fail until :meth:`up`.  Idempotent."""
        if not self._up:
            return
        self._up = False
        for timer, sender, receiver, packet in self._in_flight.values():
            timer.cancel()
            self.packets_dropped += 1
            self.flap_drops += 1
            self._record(packet, sender, receiver, "flap-drop")
            self._flight_drop(packet, "flap-drop")
        self._in_flight.clear()

    def up(self) -> None:
        """Bring the segment back; the transmit queue restarts empty."""
        if self._up:
            return
        self._up = True
        self._busy_until = 0.0

    @property
    def attached_nodes(self) -> List["Node"]:
        return [node for node, _ in self._attachments]

    def owner_of(self, ip) -> Optional["Node"]:
        """Node whose interface on this link owns *ip*, if any."""
        return self._owner_index.get(IPv4Address(ip))

    def transmit(self, packet: Packet, sender: "Node", next_hop_ip) -> bool:
        """Send *packet* toward the attached interface owning *next_hop_ip*.

        Returns True if delivery was scheduled; False if the next hop does not
        exist on this segment or the packet was lost.  Both cases are silent
        on the wire — exactly how a datagram to a non-existent private host
        behaves in the paper's §3.4 scenario.
        """
        if not self._up:
            self.packets_dropped += 1
            self.flap_drops += 1
            self._record(packet, sender, None, "link-down")
            self._flight_drop(packet, "link-down")
            return False
        receiver = self._owner_index.get(IPv4Address(next_hop_ip))
        if receiver is None or receiver is sender:
            self.packets_dropped += 1
            self._record(packet, sender, None, "no-next-hop")
            self._flight_drop(packet, "no-next-hop")
            return False
        if self.profile.loss and self._rng.chance(self.profile.loss):
            self.packets_dropped += 1
            self._lost_handles[packet.proto].inc()
            self._record(packet, sender, receiver, "lost")
            self._flight_drop(packet, "lost")
            return False
        if self.profile.burst_enter and self._ge_burst_drops(packet):
            self.packets_dropped += 1
            self.burst_drops += 1
            self._lost_handles[packet.proto].inc()
            self._record(packet, sender, receiver, "burst-lost")
            self._flight_drop(packet, "burst-lost")
            return False
        delay = self.profile.latency
        if self.profile.jitter:
            delay += self._rng.uniform(0.0, self.profile.jitter)
        if self.profile.bandwidth_bps is not None:
            now = self.scheduler.now
            queue_wait = max(0.0, self._busy_until - now)
            if (
                self.profile.max_queue_delay is not None
                and queue_wait > self.profile.max_queue_delay
            ):
                self.packets_dropped += 1
                self.queue_drops += 1
                self._record(packet, sender, receiver, "queue-drop")
                self._flight_drop(packet, "queue-drop")
                return False
            serialization = packet.size * 8 / self.profile.bandwidth_bps
            self._busy_until = now + queue_wait + serialization
            delay += queue_wait + serialization
        if self.profile.reorder and self._rng.chance(self.profile.reorder):
            delay += self.profile.reorder_delay
            self.packets_reordered += 1
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self._sent_handles[packet.proto].inc()
        self._record(packet, sender, receiver, "sent")
        self._schedule_delivery(packet, sender, receiver, delay)
        if self.profile.duplicate and self._rng.chance(self.profile.duplicate):
            # A duplicated datagram trails its original by one extra latency.
            self.duplicates_delivered += 1
            self.packets_sent += 1
            self.bytes_sent += packet.size
            self._sent_handles[packet.proto].inc()
            self._record(packet, sender, receiver, "duplicated")
            self._schedule_delivery(packet, sender, receiver, delay + self.profile.latency)
        return True

    def _ge_burst_drops(self, packet: Packet) -> bool:
        """Advance the Gilbert-Elliott two-state chain one packet and report
        whether the bad state claims this packet."""
        if self._ge_bad:
            if self._rng.chance(self.profile.burst_exit):
                self._ge_bad = False
        elif self._rng.chance(self.profile.burst_enter):
            self._ge_bad = True
        return self._ge_bad and self._rng.chance(self.profile.burst_loss)

    def _schedule_delivery(
        self, packet: Packet, sender: "Node", receiver: "Node", delay: float
    ) -> None:
        seq = next(self._flight_seq)
        timer = self.scheduler.call_later(delay, self._deliver, seq)
        self._in_flight[seq] = (timer, sender, receiver, packet)

    def _deliver(self, seq: int) -> None:
        _, _, receiver, packet = self._in_flight.pop(seq)
        receiver.receive(packet, self)

    def _flight_drop(self, packet: Packet, reason: str) -> None:
        """Flight-record a wire drop; drop paths only, never the send path."""
        if self._flight is not None:
            self._flight.packet_event(
                "link.drop", packet, link=self.name, reason=reason
            )

    def _record(self, packet: Packet, sender: "Node", receiver, event: str) -> None:
        if self._trace is not None:
            self._trace.record(
                time=self.scheduler.now,
                link=self.name,
                sender=sender.name,
                receiver=receiver.name if receiver is not None else None,
                event=event,
                packet=packet,
            )

    def __repr__(self) -> str:
        return f"Link({self.name!r}, attached={len(self._attachments)})"
