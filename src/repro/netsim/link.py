"""Links: L2 segments connecting node interfaces.

A :class:`Link` models either a point-to-point wire or a small broadcast
segment (a home LAN behind a NAT).  Delivery is next-hop-addressed: the
sending node resolves the next-hop IP (its routing decision) and the link
delivers to whichever attached interface owns that IP — an ARP-free
simplification that preserves everything the paper's scenarios need,
including "stray traffic reaches the wrong host with the same private IP"
(§3.4): two *different* links can each have a host at 10.1.1.3.

Latency, jitter, and loss come from a :class:`LinkProfile`; all randomness is
drawn from the owning network's seeded RNG, so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Address
from repro.netsim.clock import Scheduler
from repro.netsim.packet import Packet
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.netsim.node import Node
    from repro.netsim.trace import PacketTrace


@dataclass(frozen=True)
class LinkProfile:
    """Propagation characteristics of a link.

    Attributes:
        latency: one-way delay in seconds.
        jitter: maximum extra uniform random delay in seconds.
        loss: independent per-packet drop probability in [0, 1].
        bandwidth_bps: serialization rate in bits/second; None = infinite.
            With a finite rate the link models a FIFO transmit queue: each
            packet occupies the wire for ``size*8/bandwidth`` seconds and
            later packets wait their turn (this is what makes "relaying
            consumes the server's bandwidth", §2.2, measurable).
        max_queue_delay: tail-drop threshold — a packet that would wait
            longer than this in the transmit queue is dropped.  None = an
            unbounded queue.
    """

    latency: float = 0.010
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth_bps: Optional[float] = None
    max_queue_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency/jitter must be non-negative")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss probability out of range: {self.loss}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.max_queue_delay is not None and self.max_queue_delay < 0:
            raise ValueError("max_queue_delay must be non-negative")


#: Typical last-mile consumer link.
CONSUMER_LINK = LinkProfile(latency=0.015, jitter=0.005)
#: Low-latency LAN segment.
LAN_LINK = LinkProfile(latency=0.0005)
#: Well-connected server uplink.
BACKBONE_LINK = LinkProfile(latency=0.005)


class Link:
    """An L2 segment with one or more attached node interfaces."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "link",
        profile: Optional[LinkProfile] = None,
        rng: Optional[SeededRng] = None,
        trace: Optional["PacketTrace"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.profile = profile or LinkProfile()
        self._rng = rng or SeededRng(0, f"link/{name}")
        self._trace = trace
        self._attachments: List[Tuple["Node", IPv4Address]] = []
        self._owner_index: Dict[IPv4Address, "Node"] = {}
        self._busy_until = 0.0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.queue_drops = 0
        self.bytes_sent = 0
        #: Per-protocol breakdowns (IpProtocol -> count), fed to the metrics
        #: registry by the owning network's collector.
        self.sent_by_proto: Dict[object, int] = {}
        self.lost_by_proto: Dict[object, int] = {}

    def attach(self, node: "Node", ip) -> None:
        """Attach *node*'s interface at *ip* to this segment."""
        address = IPv4Address(ip)
        if address in self._owner_index:
            raise ValueError(f"duplicate IP {address} on link {self.name}")
        self._attachments.append((node, address))
        self._owner_index[address] = node

    def detach(self, node: "Node") -> None:
        """Remove every attachment belonging to *node*."""
        self._attachments = [(n, ip) for n, ip in self._attachments if n is not node]
        self._owner_index = {ip: n for n, ip in self._attachments}

    @property
    def attached_nodes(self) -> List["Node"]:
        return [node for node, _ in self._attachments]

    def owner_of(self, ip) -> Optional["Node"]:
        """Node whose interface on this link owns *ip*, if any."""
        return self._owner_index.get(IPv4Address(ip))

    def transmit(self, packet: Packet, sender: "Node", next_hop_ip) -> bool:
        """Send *packet* toward the attached interface owning *next_hop_ip*.

        Returns True if delivery was scheduled; False if the next hop does not
        exist on this segment or the packet was lost.  Both cases are silent
        on the wire — exactly how a datagram to a non-existent private host
        behaves in the paper's §3.4 scenario.
        """
        receiver = self._owner_index.get(IPv4Address(next_hop_ip))
        if receiver is None or receiver is sender:
            self.packets_dropped += 1
            self._record(packet, sender, None, "no-next-hop")
            return False
        if self.profile.loss and self._rng.chance(self.profile.loss):
            self.packets_dropped += 1
            self.lost_by_proto[packet.proto] = self.lost_by_proto.get(packet.proto, 0) + 1
            self._record(packet, sender, receiver, "lost")
            return False
        delay = self.profile.latency
        if self.profile.jitter:
            delay += self._rng.uniform(0.0, self.profile.jitter)
        if self.profile.bandwidth_bps is not None:
            now = self.scheduler.now
            queue_wait = max(0.0, self._busy_until - now)
            if (
                self.profile.max_queue_delay is not None
                and queue_wait > self.profile.max_queue_delay
            ):
                self.packets_dropped += 1
                self.queue_drops += 1
                self._record(packet, sender, receiver, "queue-drop")
                return False
            serialization = packet.size * 8 / self.profile.bandwidth_bps
            self._busy_until = now + queue_wait + serialization
            delay += queue_wait + serialization
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self.sent_by_proto[packet.proto] = self.sent_by_proto.get(packet.proto, 0) + 1
        self._record(packet, sender, receiver, "sent")
        self.scheduler.call_later(delay, receiver.receive, packet, self)
        return True

    def _record(self, packet: Packet, sender: "Node", receiver, event: str) -> None:
        if self._trace is not None:
            self._trace.record(
                time=self.scheduler.now,
                link=self.name,
                sender=sender.name,
                receiver=receiver.name if receiver is not None else None,
                event=event,
                packet=packet,
            )

    def __repr__(self) -> str:
        return f"Link({self.name!r}, attached={len(self._attachments)})"
