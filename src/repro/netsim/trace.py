"""Packet tracing: capture wire events for tests, debugging, and benches."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Deque, List, Optional

from repro.netsim.packet import IpProtocol, Packet


@dataclass(frozen=True)
class TraceRecord:
    """One observed wire event.

    ``event`` is one of ``"sent"``, ``"lost"``, ``"no-next-hop"``.
    """

    time: float
    link: str
    sender: str
    receiver: Optional[str]
    event: str
    packet: Packet

    def __str__(self) -> str:
        to = self.receiver or "-"
        return f"[{self.time:9.4f}] {self.link}: {self.sender}->{to} {self.event} {self.packet.describe()}"


class PacketTrace:
    """A bounded ring-buffer capture of wire events with query helpers.

    Disabled by default (capture costs memory in big fleet runs); call
    :meth:`enable` before the traffic of interest.  At capacity the **oldest**
    record is evicted so the capture always holds the newest traffic — the
    part a post-mortem wants — and :attr:`dropped_records` counts evictions
    (surfaced by :meth:`dump` so truncation is never silent).
    """

    def __init__(self, enabled: bool = False, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._enabled = enabled
        #: Callbacks run whenever ``enabled`` flips; links subscribe so their
        #: precomputed fast-path flag tracks mid-run enable()/disable().
        self._listeners: List[Callable[[], None]] = []
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped_records = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value == self._enabled:
            return
        self._enabled = value
        for listener in self._listeners:
            listener()

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked whenever :attr:`enabled` changes."""
        self._listeners.append(listener)

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first (a copy — cheap for queries,
        never mutated under the caller)."""
        return list(self._records)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._records.clear()
        self.dropped_records = 0

    def record(self, time: float, link: str, sender: str, receiver: Optional[str], event: str, packet: Packet) -> None:
        """Append a record (no-op when disabled; evicts oldest at capacity)."""
        if not self.enabled:
            return
        if len(self._records) == self.capacity:
            self.dropped_records += 1
        self._records.append(
            TraceRecord(time=time, link=link, sender=sender, receiver=receiver, event=event, packet=packet)
        )

    def __len__(self) -> int:
        return len(self._records)

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self._records if predicate(r)]

    def sent(self, proto: Optional[IpProtocol] = None) -> List[TraceRecord]:
        """Successfully transmitted packets, optionally by protocol."""
        return [
            r
            for r in self._records
            if r.event == "sent" and (proto is None or r.packet.proto is proto)
        ]

    def between(self, sender: str, receiver: str) -> List[TraceRecord]:
        """Sent records from node *sender* to node *receiver*."""
        return [
            r for r in self._records if r.event == "sent" and r.sender == sender and r.receiver == receiver
        ]

    def count(self, event: str = "sent") -> int:
        return sum(1 for r in self._records if r.event == event)

    def dump(self, limit: int = 200) -> str:
        """Human-readable multi-line dump (truncated at *limit* lines).

        The header reports ring-buffer evictions so a capped capture is
        visibly — not silently — incomplete.
        """
        lines = []
        if self.dropped_records:
            lines.append(
                f"... {self.dropped_records} older records evicted (capacity {self.capacity})"
            )
        lines.extend(str(r) for r in islice(self._records, limit))
        if len(self._records) > limit:
            lines.append(f"... {len(self._records) - limit} more records")
        return "\n".join(lines)
