"""Packet tracing: capture wire events for tests, debugging, and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.packet import IpProtocol, Packet


@dataclass(frozen=True)
class TraceRecord:
    """One observed wire event.

    ``event`` is one of ``"sent"``, ``"lost"``, ``"no-next-hop"``.
    """

    time: float
    link: str
    sender: str
    receiver: Optional[str]
    event: str
    packet: Packet

    def __str__(self) -> str:
        to = self.receiver or "-"
        return f"[{self.time:9.4f}] {self.link}: {self.sender}->{to} {self.event} {self.packet.describe()}"


class PacketTrace:
    """An append-only capture of wire events with simple query helpers.

    Disabled by default (capture costs memory in big fleet runs); call
    :meth:`enable` before the traffic of interest.
    """

    def __init__(self, enabled: bool = False, capacity: int = 1_000_000) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0

    def record(self, time: float, link: str, sender: str, receiver: Optional[str], event: str, packet: Packet) -> None:
        """Append a record (no-op when disabled or at capacity)."""
        if not self.enabled:
            return
        if len(self.records) >= self.capacity:
            self.dropped_records += 1
            return
        self.records.append(
            TraceRecord(time=time, link=link, sender=sender, receiver=receiver, event=event, packet=packet)
        )

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [r for r in self.records if predicate(r)]

    def sent(self, proto: Optional[IpProtocol] = None) -> List[TraceRecord]:
        """Successfully transmitted packets, optionally by protocol."""
        return [
            r
            for r in self.records
            if r.event == "sent" and (proto is None or r.packet.proto is proto)
        ]

    def between(self, sender: str, receiver: str) -> List[TraceRecord]:
        """Sent records from node *sender* to node *receiver*."""
        return [
            r for r in self.records if r.event == "sent" and r.sender == sender and r.receiver == receiver
        ]

    def count(self, event: str = "sent") -> int:
        return sum(1 for r in self.records if r.event == event)

    def dump(self, limit: int = 200) -> str:
        """Human-readable multi-line dump (truncated at *limit* lines)."""
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more records")
        return "\n".join(lines)
