"""Topology container: owns the scheduler, RNG, trace, metrics, nodes, links."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.netsim.addresses import IPv4Network
from repro.netsim.clock import Scheduler
from repro.netsim.link import Link, LinkProfile
from repro.netsim.node import Host, Node, Router
from repro.netsim.trace import PacketTrace
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flight import FlightRecorder


class Network:
    """A simulated internetwork.

    Typical construction (the paper's Figure 5 topology):

        net = Network(seed=7)
        backbone = net.create_link("backbone", LinkProfile(latency=0.005))
        server = net.add_host("S", ip="18.181.0.31",
                              network="18.181.0.0/16", link=backbone)
        ... attach NAT devices and private hosts ...
        net.run_until(5.0)

    The network owns the run's :class:`MetricsRegistry`: every node added to
    it gets a ``.metrics`` reference, and the built-in collector pulls the
    substrate's plain counters (scheduler, links, NAT tables, host stacks)
    into the registry at snapshot time.  ``metrics_enabled=False`` turns the
    whole layer into no-ops for overhead comparisons.
    """

    def __init__(self, seed: int = 0, metrics_enabled: bool = True) -> None:
        self.scheduler = Scheduler()
        self.rng = SeededRng(seed, "network")
        self.trace = PacketTrace(enabled=False)
        self.metrics = MetricsRegistry(
            now_fn=lambda: self.scheduler.now, enabled=metrics_enabled
        )
        self.metrics.add_collector(self._collect_builtin)
        #: Causal flight recorder (see :mod:`repro.obs.flight`); attached on
        #: demand via :meth:`attach_flight`, None by default so the packet
        #: path pays nothing.
        self.flight = None
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._link_counter = 0

    # -- construction --------------------------------------------------------

    def create_link(self, name: Optional[str] = None, profile: Optional[LinkProfile] = None) -> Link:
        """Create a new L2 segment."""
        if name is None:
            self._link_counter += 1
            name = f"link{self._link_counter}"
        if name in self.links:
            raise ValueError(f"duplicate link name {name!r}")
        link = Link(
            self.scheduler,
            name=name,
            profile=profile,
            rng=self.rng.child(f"link/{name}"),
            trace=self.trace,
        )
        if self.flight is not None:
            link.set_flight(self.flight)
        self.links[name] = link
        return link

    def add_node(self, node: Node) -> Node:
        """Register an externally-constructed node (e.g. a NatDevice)."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.metrics = self.metrics  # reachable from every layer above
        node.flight = self.flight
        return node

    def attach_flight(self, capacity: Optional[int] = None) -> "FlightRecorder":
        """Attach a causal flight recorder and fan it out to every layer.

        Existing and future nodes/links get the reference; idempotent (a
        second call returns the recorder already attached).  Recording stays
        strictly passive — determinism is unaffected.
        """
        from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder

        if self.flight is None:
            self.flight = FlightRecorder(
                self.scheduler,
                capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            )
            for link in self.links.values():
                link.set_flight(self.flight)
            for node in self.nodes.values():
                node.flight = self.flight
        return self.flight

    def add_host(
        self,
        name: str,
        ip=None,
        network=None,
        link: Optional[Link] = None,
        gateway=None,
    ) -> Host:
        """Create and register a Host, optionally wiring its first interface."""
        host = Host(name, self.scheduler)
        self.add_node(host)
        if ip is not None:
            if network is None or link is None:
                raise ValueError("add_host with ip= requires network= and link=")
            host.add_interface("eth0", ip, IPv4Network(network), link)
            if gateway is not None:
                host.set_default_gateway(gateway)
        return host

    def add_router(self, name: str) -> Router:
        """Create and register a plain Router (interfaces wired by caller)."""
        router = Router(name, self.scheduler)
        self.add_node(router)
        return router

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"node {name!r} is a {type(node).__name__}, not a Host")
        return node

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_until(self, deadline: float) -> None:
        self.scheduler.run_until(deadline)

    def run_for(self, duration: float) -> None:
        self.scheduler.run_until(self.scheduler.now + duration)

    def run(self, max_events: int = 1_000_000) -> int:
        return self.scheduler.run(max_events=max_events)

    # -- introspection ---------------------------------------------------------

    def total_packets_sent(self) -> int:
        return sum(link.packets_sent for link in self.links.values())

    def total_bytes_sent(self) -> int:
        return sum(link.bytes_sent for link in self.links.values())

    # -- observability ----------------------------------------------------------

    def _collect_builtin(self, registry) -> None:
        """Snapshot-time collector: copy the substrate's plain counters into
        the registry.  Hot paths pay nothing; duck-typing keeps netsim from
        importing the nat/transport layers it is collecting from."""
        scheduler = self.scheduler
        registry.counter("scheduler.events_fired").value = scheduler.events_fired
        registry.counter("scheduler.events_cancelled").value = scheduler.events_cancelled
        registry.counter("scheduler.compactions").value = scheduler.compactions
        registry.counter("scheduler.compacted_entries").value = scheduler.compacted_entries
        registry.gauge("scheduler.queue_depth").set(scheduler.queue_depth)
        registry.gauge("scheduler.max_queue_depth").set(scheduler.max_queue_depth)
        # Eviction visibility: a truncated capture must be detectable from a
        # JSON snapshot, not just the trace dump header.
        registry.gauge("trace.dropped_records").set(self.trace.dropped_records)
        if self.flight is not None:
            registry.gauge("flight.dropped_events").set(self.flight.dropped_events)
            registry.gauge("flight.attempts").set(len(self.flight.attempts))
        sent_by_proto: Dict[object, int] = {}
        lost_by_proto: Dict[object, int] = {}
        packets = drops = queue_drops = total_bytes = 0
        flap_drops = burst_drops = duplicates = reordered = 0
        for link in self.links.values():
            packets += link.packets_sent
            drops += link.packets_dropped
            queue_drops += link.queue_drops
            total_bytes += link.bytes_sent
            flap_drops += link.flap_drops
            burst_drops += link.burst_drops
            duplicates += link.duplicates_delivered
            reordered += link.packets_reordered
            for proto, count in link.sent_by_proto.items():
                sent_by_proto[proto] = sent_by_proto.get(proto, 0) + count
            for proto, count in link.lost_by_proto.items():
                lost_by_proto[proto] = lost_by_proto.get(proto, 0) + count
        registry.counter("link.packets_sent").value = packets
        registry.counter("link.packets_dropped").value = drops
        registry.counter("link.queue_drops").value = queue_drops
        registry.counter("link.flap_drops").value = flap_drops
        registry.counter("link.burst_drops").value = burst_drops
        registry.counter("link.duplicates").value = duplicates
        registry.counter("link.reordered").value = reordered
        registry.counter("link.bytes_sent").value = total_bytes
        for proto, count in sent_by_proto.items():
            registry.counter("link.packets_sent", proto=proto.name.lower()).value = count
        for proto, count in lost_by_proto.items():
            registry.counter("link.packets_lost", proto=proto.name.lower()).value = count
        tcp_totals: Dict[str, int] = {}
        syn_outcomes: Dict[str, int] = {}
        udp_totals: Dict[str, int] = {}
        for node in self.nodes.values():
            table = getattr(node, "table", None)
            if table is not None and hasattr(table, "mappings_created"):
                name = node.name
                registry.gauge("nat.mapping_table_size", node=name).set(len(table))
                registry.counter("nat.mappings_created", node=name).value = table.mappings_created
                registry.counter("nat.mappings_expired", node=name).value = table.mappings_expired
                registry.counter("nat.translations_out", node=name).value = node.translations_out
                registry.counter("nat.translations_in", node=name).value = node.translations_in
                registry.counter("nat.hairpin_forwarded", node=name).value = node.hairpin_forwarded
                registry.counter("nat.reboots", node=name).value = getattr(node, "reboots", 0)
                registry.counter("nat.mappings_lost_to_reset", node=name).value = getattr(
                    table, "mappings_lost_to_reset", 0
                )
                for reason, count in getattr(node, "drops_by_reason", {}).items():
                    registry.counter("nat.drops", node=name, reason=reason).value = count
            stack = getattr(node, "stack", None)
            if stack is None:
                continue
            tcp = getattr(stack, "tcp", None)
            if tcp is not None:
                for field in ("retransmits", "rto_fires", "rsts_sent", "segments_dropped"):
                    tcp_totals[field] = tcp_totals.get(field, 0) + getattr(tcp, field, 0)
                for outcome, count in getattr(tcp, "syn_outcomes", {}).items():
                    syn_outcomes[outcome] = syn_outcomes.get(outcome, 0) + count
            udp = getattr(stack, "udp", None)
            if udp is not None:
                udp_totals["datagrams_sent"] = udp_totals.get("datagrams_sent", 0) + getattr(
                    udp, "datagrams_sent", 0
                )
                udp_totals["datagrams_received"] = udp_totals.get(
                    "datagrams_received", 0
                ) + getattr(udp, "datagrams_received", 0)
                udp_totals["unmatched_drops"] = udp_totals.get(
                    "unmatched_drops", 0
                ) + getattr(udp, "packets_dropped", 0)
        for field, value in tcp_totals.items():
            registry.counter(f"tcp.{field}").value = value
        for outcome, count in syn_outcomes.items():
            registry.counter("tcp.syn_outcomes", outcome=outcome).value = count
        for field, value in udp_totals.items():
            registry.counter(f"udp.{field}").value = value

    def metrics_summary(self) -> str:
        """Full text dump of the run's metrics (collectors included)."""
        from repro.obs.export import render_text

        return render_text(self.metrics)

    def metrics_json(self, indent: Optional[int] = None) -> str:
        """Round-trippable JSON dump of the run's metrics."""
        from repro.obs.export import to_json

        return to_json(self.metrics, indent=indent)

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, links={len(self.links)}, t={self.now:.3f})"
