"""Topology container: owns the scheduler, RNG, trace, nodes, and links."""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.addresses import IPv4Network
from repro.netsim.clock import Scheduler
from repro.netsim.link import Link, LinkProfile
from repro.netsim.node import Host, Node, Router
from repro.netsim.trace import PacketTrace
from repro.util.rng import SeededRng


class Network:
    """A simulated internetwork.

    Typical construction (the paper's Figure 5 topology):

        net = Network(seed=7)
        backbone = net.create_link("backbone", LinkProfile(latency=0.005))
        server = net.add_host("S", ip="18.181.0.31",
                              network="18.181.0.0/16", link=backbone)
        ... attach NAT devices and private hosts ...
        net.run_until(5.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self.scheduler = Scheduler()
        self.rng = SeededRng(seed, "network")
        self.trace = PacketTrace(enabled=False)
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._link_counter = 0

    # -- construction --------------------------------------------------------

    def create_link(self, name: Optional[str] = None, profile: Optional[LinkProfile] = None) -> Link:
        """Create a new L2 segment."""
        if name is None:
            self._link_counter += 1
            name = f"link{self._link_counter}"
        if name in self.links:
            raise ValueError(f"duplicate link name {name!r}")
        link = Link(
            self.scheduler,
            name=name,
            profile=profile,
            rng=self.rng.child(f"link/{name}"),
            trace=self.trace,
        )
        self.links[name] = link
        return link

    def add_node(self, node: Node) -> Node:
        """Register an externally-constructed node (e.g. a NatDevice)."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_host(
        self,
        name: str,
        ip=None,
        network=None,
        link: Optional[Link] = None,
        gateway=None,
    ) -> Host:
        """Create and register a Host, optionally wiring its first interface."""
        host = Host(name, self.scheduler)
        self.add_node(host)
        if ip is not None:
            if network is None or link is None:
                raise ValueError("add_host with ip= requires network= and link=")
            host.add_interface("eth0", ip, IPv4Network(network), link)
            if gateway is not None:
                host.set_default_gateway(gateway)
        return host

    def add_router(self, name: str) -> Router:
        """Create and register a plain Router (interfaces wired by caller)."""
        router = Router(name, self.scheduler)
        self.add_node(router)
        return router

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"node {name!r} is a {type(node).__name__}, not a Host")
        return node

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_until(self, deadline: float) -> None:
        self.scheduler.run_until(deadline)

    def run_for(self, duration: float) -> None:
        self.scheduler.run_until(self.scheduler.now + duration)

    def run(self, max_events: int = 1_000_000) -> int:
        return self.scheduler.run(max_events=max_events)

    # -- introspection ---------------------------------------------------------

    def total_packets_sent(self) -> int:
        return sum(link.packets_sent for link in self.links.values())

    def total_bytes_sent(self) -> int:
        return sum(link.bytes_sent for link in self.links.values())

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, links={len(self.links)}, t={self.now:.3f})"
