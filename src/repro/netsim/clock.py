"""Virtual-time event scheduler.

The whole simulation is single-threaded and deterministic: every delayed
action (packet delivery, retransmission timer, NAT idle timeout, application
timeout) is a :class:`Timer` on one :class:`Scheduler`.  Ties are broken by
insertion order, so two events scheduled for the same instant fire in the
order they were scheduled — a property several NAT-race tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Tuple


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Scheduler.call_at` /
    :meth:`Scheduler.call_later`; user code should never construct one.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "_fired", "_scheduler", "_ctx")

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: Tuple,
        scheduler: "Scheduler" = None,
    ):
        self.when = when
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._fired = False
        self._scheduler = scheduler
        # Causal context: a timer inherits the context active when it was
        # scheduled and restores it when it fires, so attempt identity flows
        # through arbitrary timer chains (packet deliveries, retransmits,
        # delayed server replies) without any per-layer plumbing.
        self._ctx = scheduler.context if scheduler is not None else None

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent.

        Cancelling a timer that already fired is a no-op: the timer stays
        in the ``fired`` state rather than reporting both ``fired`` and
        ``cancelled`` True.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._callback(*self._args)


class Scheduler:
    """A deterministic discrete-event scheduler with virtual time.

    Time is a float in seconds and starts at 0.0.  Nothing advances the clock
    except :meth:`step`, :meth:`run_until`, or :meth:`run`.

    Cancelled timers stay in the heap until popped (cheap cancellation), but
    once they outnumber the live timers the heap is lazily compacted: dead
    entries are filtered out and the heap rebuilt in O(n).  Entries keep
    their original insertion sequence numbers, so tie-breaking — and
    therefore every wire trace — is byte-identical with and without
    compaction.
    """

    #: Never compact heaps smaller than this; rebuilding a tiny heap costs
    #: more than popping the dead entries would.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        #: Causal context of the currently-executing timer chain (an attempt
        #: id from :mod:`repro.obs.flight`, or None).  New timers capture it;
        #: the fire loops restore it before each callback.
        self.context = None
        self._heap: List[Tuple[float, int, Timer]] = []
        self._sequence = itertools.count()
        #: Cancelled timers still occupying heap slots.
        self._cancelled_in_heap = 0
        #: Lazy removal of cancelled entries (see class docstring); tests
        #: flip this off to prove traces don't depend on it.
        self.compaction_enabled = True
        #: Times the heap was rebuilt to shed cancelled entries.
        self.compactions = 0
        #: Dead entries removed by compaction (vs. popped organically).
        self.compacted_entries = 0
        #: Events whose callbacks actually ran (cancelled timers excluded).
        self.events_fired = 0
        #: Timers cancelled while still pending.
        self.events_cancelled = 0
        #: High-water mark of the timer heap (includes cancelled entries).
        self.max_queue_depth = 0
        #: After :meth:`run`: True if it stopped because *max_events* was
        #: exhausted with work still pending, False if the queue drained.
        self.last_run_exhausted = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (neither fired nor cancelled) timers in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancel(self) -> None:
        """Bookkeeping for Timer.cancel; compacts when dead entries win."""
        self.events_cancelled += 1
        self._cancelled_in_heap += 1
        if (
            self.compaction_enabled
            and len(self._heap) >= self.COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify; order is preserved because
        surviving entries keep their (when, sequence) sort keys."""
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
        heapq.heapify(self._heap)
        self.compactions += 1
        self.compacted_entries += before - len(self._heap)
        self._cancelled_in_heap = 0

    @property
    def queue_depth(self) -> int:
        """Raw heap length — the O(1) figure the metrics gauge samples."""
        return len(self._heap)

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* at absolute time *when*.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder causality.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule at t={when:.6f} before now={self._now:.6f}"
            )
        timer = Timer(when, callback, args, self)
        heapq.heappush(self._heap, (when, next(self._sequence), timer))
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)
        return timer

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* after *delay* seconds (>= 0).

        Fast path: a non-negative delay cannot land in the past, so this
        skips :meth:`call_at`'s causality check and pushes directly — this
        is the constructor virtually every packet delivery and protocol
        timer goes through.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self._now + delay
        timer = Timer(when, callback, args, self)
        heap = self._heap
        heapq.heappush(heap, (when, next(self._sequence), timer))
        if len(heap) > self.max_queue_depth:
            self.max_queue_depth = len(heap)
        return timer

    def step(self) -> bool:
        """Fire the earliest pending event.  Returns False if none remain."""
        while self._heap:
            when, _, timer = heapq.heappop(self._heap)
            if timer._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = when
            self.events_fired += 1
            self.context = timer._ctx
            timer._fire()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run events with ``when <= deadline``; clock ends at *deadline*.

        The clock is advanced to exactly *deadline* even if the last event is
        earlier, so back-to-back ``run_until`` calls compose predictably.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline t={deadline:.6f} is before now={self._now:.6f}"
            )
        while self._heap:
            when, _, timer = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            if timer._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = when
            self.events_fired += 1
            self.context = timer._ctx
            timer._fire()
        self._now = deadline

    def run(self, max_events: int = 1_000_000, strict: bool = True) -> int:
        """Run until the event heap drains.  Returns events fired.

        *max_events* guards against livelock (e.g. two hosts ping-ponging
        keep-alives forever).  Whether the run drained the queue or
        exhausted its budget is reported via :attr:`last_run_exhausted`;
        with ``strict`` (the default) budget exhaustion also raises
        ``RuntimeError``, so livelocks cannot pass silently.
        """
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        self.last_run_exhausted = fired >= max_events and any(
            timer.active for _, _, timer in self._heap
        )
        if self.last_run_exhausted and strict:
            raise RuntimeError(f"scheduler exceeded {max_events} events")
        return fired

    def run_while(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Run while *predicate()* is true, up to *deadline*.

        Returns True if the predicate became false (condition met), False if
        the deadline was reached first.  Useful for "run until connected or
        5 s elapse" patterns in tests and examples.
        """
        while predicate():
            if not self._heap or self._heap[0][0] > deadline:
                self._now = deadline
                return False
            self.step()
        return True
