"""Virtual-time event scheduler.

The whole simulation is single-threaded and deterministic: every delayed
action (packet delivery, retransmission timer, NAT idle timeout, application
timeout) is a :class:`Timer` on one :class:`Scheduler`.  Ties are broken by
insertion order, so two events scheduled for the same instant fire in the
order they were scheduled — a property several NAT-race tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Tuple


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Scheduler.call_at` /
    :meth:`Scheduler.call_later`; user code should never construct one.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "_fired")

    def __init__(self, when: float, callback: Callable[..., Any], args: Tuple):
        self.when = when
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._callback(*self._args)


class Scheduler:
    """A deterministic discrete-event scheduler with virtual time.

    Time is a float in seconds and starts at 0.0.  Nothing advances the clock
    except :meth:`step`, :meth:`run_until`, or :meth:`run`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of timers still in the heap (including cancelled ones)."""
        return sum(1 for _, _, t in self._heap if t.active)

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* at absolute time *when*.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder causality.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule at t={when:.6f} before now={self._now:.6f}"
            )
        timer = Timer(when, callback, args)
        heapq.heappush(self._heap, (when, next(self._sequence), timer))
        return timer

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* after *delay* seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Fire the earliest pending event.  Returns False if none remain."""
        while self._heap:
            when, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            timer._fire()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run events with ``when <= deadline``; clock ends at *deadline*.

        The clock is advanced to exactly *deadline* even if the last event is
        earlier, so back-to-back ``run_until`` calls compose predictably.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline t={deadline:.6f} is before now={self._now:.6f}"
            )
        while self._heap:
            when, _, timer = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            timer._fire()
        self._now = deadline

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the event heap drains.  Returns events fired.

        *max_events* guards against livelock (e.g. two hosts ping-ponging
        keep-alives forever); exceeding it raises ``RuntimeError``.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"scheduler exceeded {max_events} events")
        return fired

    def run_while(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Run while *predicate()* is true, up to *deadline*.

        Returns True if the predicate became false (condition met), False if
        the deadline was reached first.  Useful for "run until connected or
        5 s elapse" patterns in tests and examples.
        """
        while predicate():
            if not self._heap or self._heap[0][0] > deadline:
                self._now = deadline
                return False
            self.step()
        return True
