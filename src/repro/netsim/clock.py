"""Virtual-time event scheduler.

The whole simulation is single-threaded and deterministic: every delayed
action (packet delivery, retransmission timer, NAT idle timeout, application
timeout) is a :class:`Timer` on one :class:`Scheduler`.  Ties are broken by
insertion order, so two events scheduled for the same instant fire in the
order they were scheduled — a property several NAT-race tests rely on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

from repro.netsim.packet import PACKET_POOL


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Scheduler.call_at` /
    :meth:`Scheduler.call_later`; user code should never construct one.
    """

    __slots__ = (
        "when", "_callback", "_args", "_cancelled", "_fired", "_scheduler",
        "_ctx", "_items", "_inext", "_bseq", "_unpack",
    )

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: Tuple,
        scheduler: "Scheduler" = None,
    ):
        self.when = when
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._fired = False
        self._scheduler = scheduler
        #: Batched-delivery queue (see Scheduler.call_later_batched); None
        #: marks an ordinary single-shot timer.
        self._items = None
        # Causal context: a timer inherits the context active when it was
        # scheduled and restores it when it fires, so attempt identity flows
        # through arbitrary timer chains (packet deliveries, retransmits,
        # delayed server replies) without any per-layer plumbing.
        self._ctx = scheduler.context if scheduler is not None else None

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent.

        Cancelling a timer that already fired is a no-op: the timer stays
        in the ``fired`` state rather than reporting both ``fired`` and
        ``cancelled`` True.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._callback(*self._args)


class Scheduler:
    """A deterministic discrete-event scheduler with virtual time.

    Time is a float in seconds and starts at 0.0.  Nothing advances the clock
    except :meth:`step`, :meth:`run_until`, or :meth:`run`.

    Cancelled timers stay in the heap until popped (cheap cancellation), but
    once they outnumber the live timers the heap is lazily compacted: dead
    entries are filtered out and the heap rebuilt in O(n).  Entries keep
    their original insertion sequence numbers, so tie-breaking — and
    therefore every wire trace — is byte-identical with and without
    compaction.
    """

    #: Never compact heaps smaller than this; rebuilding a tiny heap costs
    #: more than popping the dead entries would.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        #: Causal context of the currently-executing timer chain (an attempt
        #: id from :mod:`repro.obs.flight`, or None).  New timers capture it;
        #: the fire loops restore it before each callback.
        self.context = None
        self._heap: List[Tuple[float, int, Timer]] = []
        #: Insertion sequence of the most recently created timer.  A plain
        #: int (not itertools.count) so callers that coalesce same-instant
        #: work — Link's delivery batches — can check "has any timer been
        #: created since?" and only extend a batch when appending preserves
        #: the scheduler's insertion-order tie-break exactly.
        self._seq = 0
        #: Cancelled timers still occupying heap slots.
        self._cancelled_in_heap = 0
        #: Lazy removal of cancelled entries (see class docstring); tests
        #: flip this off to prove traces don't depend on it.
        self.compaction_enabled = True
        #: Times the heap was rebuilt to shed cancelled entries.
        self.compactions = 0
        #: Dead entries removed by compaction (vs. popped organically).
        self.compacted_entries = 0
        #: Events whose callbacks actually ran (cancelled timers excluded).
        self.events_fired = 0
        #: Timers cancelled while still pending.
        self.events_cancelled = 0
        #: High-water mark of the timer heap (includes cancelled entries).
        self.max_queue_depth = 0
        #: After :meth:`run`: True if it stopped because *max_events* was
        #: exhausted with work still pending, False if the queue drained.
        self.last_run_exhausted = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (neither fired nor cancelled) timers in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancel(self) -> None:
        """Bookkeeping for Timer.cancel; compacts when dead entries win."""
        self.events_cancelled += 1
        self._cancelled_in_heap += 1
        if (
            self.compaction_enabled
            and len(self._heap) >= self.COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify; order is preserved because
        surviving entries keep their (when, sequence) sort keys."""
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
        heapq.heapify(self._heap)
        self.compactions += 1
        self.compacted_entries += before - len(self._heap)
        self._cancelled_in_heap = 0

    @property
    def queue_depth(self) -> int:
        """Raw heap length — the O(1) figure the metrics gauge samples."""
        return len(self._heap)

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* at absolute time *when*.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder causality.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule at t={when:.6f} before now={self._now:.6f}"
            )
        timer = Timer(when, callback, args, self)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (when, seq, timer))
        if len(self._heap) > self.max_queue_depth:
            self.max_queue_depth = len(self._heap)
        return timer

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Schedule *callback(*args)* after *delay* seconds (>= 0).

        Fast path: a non-negative delay cannot land in the past, so this
        skips :meth:`call_at`'s causality check and pushes directly — this
        is the constructor virtually every packet delivery and protocol
        timer goes through.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self._now + delay
        timer = Timer(when, callback, args, self)
        heap = self._heap
        self._seq = seq = self._seq + 1
        heapq.heappush(heap, (when, seq, timer))
        if len(heap) > self.max_queue_depth:
            self.max_queue_depth = len(heap)
        return timer

    def call_later_batched(self, delay: float, fire_item: Callable[[Any], None]) -> Timer:
        """One heap entry that fires many same-instant events.

        Returns a timer whose item list the caller extends (via
        :meth:`batch_append`); each queued item fires as its *own* scheduler
        event — one per :meth:`step`, in append order, calling
        ``fire_item(item)`` — so event granularity, ``events_fired``, and
        ``run_while`` predicate boundaries are byte-identical to scheduling
        one timer per item.  Only the heap traffic is coalesced.

        Contract for callers: append only while (a) no other timer has been
        created since this one (``_seq`` unchanged — the items would have
        held consecutive sequence numbers, so firing them back-to-back
        preserves insertion-order tie-breaking exactly) and (b) the timer is
        still active.  :class:`repro.netsim.link.Link` is the intended
        caller and enforces both.
        """
        timer = self.call_later(delay, fire_item)
        timer._items = []
        timer._inext = 0
        # The creation sequence number, readable by the append-eligibility
        # check ("has any timer been created since?").
        timer._bseq = self._seq
        # Opt-in direct dispatch (see run_until): the creator may set this
        # True to promise every item is a ``(sender, receiver, packet,
        # dispatch-entry)`` wire delivery whose observable effect is exactly
        # ``receiver.receive(packet, fire_item.__self__)`` for non-None
        # items — letting the drain loop skip the per-item trampoline call
        # and, when the entry is valid, the receive() demux itself.
        # ``step`` always goes through ``fire_item``, so the two dispatch
        # routes must stay observably identical.
        timer._unpack = False
        return timer

    def step(self) -> bool:
        """Fire the earliest pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            when, _, timer = heap[0]
            if timer._cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            items = timer._items
            if items is None:
                heapq.heappop(heap)
                self._now = when
                self.events_fired += 1
                self.context = timer._ctx
                timer._fire()
                return True
            # Batched timer: fire exactly one queued item, leaving the heap
            # entry in place until the queue drains.  New pushes during the
            # callback sort after this entry (same when -> higher sequence),
            # so it is still the top when we pop.
            i = timer._inext
            timer._inext = i + 1
            self._now = when
            self.events_fired += 1
            self.context = timer._ctx
            try:
                timer._callback(items[i])
            finally:
                # Pop-on-drain must happen even when the callback raises, or
                # the spent entry would fire again with an empty queue.  Pop
                # from self._heap, not the local binding: a cancellation
                # inside the callback may have compacted (rebuilt) the heap.
                if not timer._cancelled and timer._inext >= len(timer._items):
                    timer._fired = True
                    heapq.heappop(self._heap)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run events with ``when <= deadline``; clock ends at *deadline*.

        The clock is advanced to exactly *deadline* even if the last event is
        earlier, so back-to-back ``run_until`` calls compose predictably.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline t={deadline:.6f} is before now={self._now:.6f}"
            )
        # self._heap is re-read every iteration (never cached in a local):
        # any callback below can cancel timers and trigger a compaction,
        # which rebuilds — and rebinds — the heap list.
        while self._heap:
            when, _, timer = self._heap[0]
            if when > deadline:
                break
            if timer._cancelled:
                heapq.heappop(self._heap)
                self._cancelled_in_heap -= 1
                continue
            items = timer._items
            if items is None:
                heapq.heappop(self._heap)
                self._now = when
                self.events_fired += 1
                self.context = timer._ctx
                timer._fire()
                continue
            # Batched timer: drain the whole queue here instead of looping
            # back through the heap peek for every item.  This is safe
            # because nothing can preempt the batch mid-drain: a callback
            # cannot schedule before `when` (past scheduling is an error)
            # and anything it schedules AT `when` carries a higher sequence
            # number, i.e. sorts after this entry — exactly the order the
            # outer loop would produce one item at a time.  Each item still
            # counts as its own scheduler event in events_fired.
            self._now = when
            i = timer._inext
            callback = timer._callback
            # Context is constant across the batch and nothing inside a
            # delivery callback reassigns it, so set it once; events_fired is
            # accumulated locally and flushed after the drain (per-item
            # attribute bumps are measurable at batch sizes in the thousands).
            self.context = timer._ctx
            fired = 0
            try:
                # len() is re-read every pass: a same-instant transmit on a
                # zero-latency link may append to this batch while it fires.
                if timer._unpack:
                    # Direct dispatch (see call_later_batched): the creator
                    # guaranteed every item is a (sender, receiver, packet,
                    # entry) wire delivery, so skip the per-item trampoline
                    # frame and — when the entry's resolved deliver callable
                    # is still valid for the receiver's current delivery
                    # version — the receive() demux too, landing straight in
                    # the transport stack (or bound socket).  Consuming
                    # deliveries recycle the packet into the pool;
                    # generation-stamping happens at release so stale
                    # references are detectable (see PacketPool).
                    owner = callback.__self__
                    pool = PACKET_POOL
                    free = (
                        pool._free
                        if pool.enabled and len(pool._free) < pool.max_free
                        else None
                    )
                    poison = pool.debug_poison
                    released = 0
                    while i < len(items):
                        timer._inext = i + 1
                        fired += 1
                        item = items[i]
                        if item is not None:
                            _sender, receiver, packet, entry = item
                            deliver, dversion, consuming, _rcv, _nh = entry
                            if (
                                deliver is not None
                                and dversion == receiver._delivery_version
                            ):
                                receiver.packets_received += 1
                                deliver(packet)
                                if free is not None and consuming:
                                    if poison:
                                        pool.release(packet)  # counts itself
                                    else:
                                        packet.gen += 1
                                        free.append(packet)
                                        released += 1
                            else:
                                receiver.receive(packet, owner)
                                if free is not None and receiver.consumes_packets:
                                    if poison:
                                        pool.release(packet)  # counts itself
                                    else:
                                        packet.gen += 1
                                        free.append(packet)
                                        released += 1
                        if timer._cancelled:
                            break
                        i = timer._inext
                    if released:
                        pool.released += released
                else:
                    while i < len(items):
                        timer._inext = i + 1
                        fired += 1
                        callback(items[i])
                        if timer._cancelled:
                            # Cancelled mid-drain (e.g. the link went down in
                            # a delivery callback); the dead entry is popped
                            # by the cancellation branch above on the next
                            # pass.
                            break
                        i = timer._inext
            finally:
                self.events_fired += fired
                # Pop the drained entry even when a callback raises.  Pop
                # from self._heap, not a local binding: a cancellation
                # inside a callback may have compacted (rebuilt) the heap.
                if (
                    not timer._cancelled
                    and not timer._fired
                    and timer._inext >= len(timer._items)
                ):
                    timer._fired = True
                    heapq.heappop(self._heap)
        self._now = deadline

    def run(self, max_events: int = 1_000_000, strict: bool = True) -> int:
        """Run until the event heap drains.  Returns events fired.

        *max_events* guards against livelock (e.g. two hosts ping-ponging
        keep-alives forever).  Whether the run drained the queue or
        exhausted its budget is reported via :attr:`last_run_exhausted`;
        with ``strict`` (the default) budget exhaustion also raises
        ``RuntimeError``, so livelocks cannot pass silently.
        """
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        self.last_run_exhausted = fired >= max_events and any(
            timer.active for _, _, timer in self._heap
        )
        if self.last_run_exhausted and strict:
            raise RuntimeError(f"scheduler exceeded {max_events} events")
        return fired

    def run_while(self, predicate: Callable[[], bool], deadline: float) -> bool:
        """Run while *predicate()* is true, up to *deadline*.

        Returns True if the predicate became false (condition met), False if
        the deadline was reached first.  Useful for "run until connected or
        5 s elapse" patterns in tests and examples.
        """
        while predicate():
            if not self._heap or self._heap[0][0] > deadline:
                self._now = deadline
                return False
            self.step()
        return True
