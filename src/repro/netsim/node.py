"""Nodes: hosts and routers.

A :class:`Node` owns named interfaces, a routing table, and a receive path.
:class:`Host` delivers locally-addressed packets to registered protocol
handlers (the transport stacks in :mod:`repro.transport` register themselves);
:class:`Router` additionally forwards transit packets.  NAT devices subclass
``Router`` in :mod:`repro.nat.device` and interpose translation on both the
forward and local-delivery paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.netsim.clock import Scheduler
from repro.netsim.link import Link
from repro.netsim.packet import IpProtocol, Packet
from repro.netsim.routing import Route, RoutingTable
from repro.util.errors import RoutingError


@dataclass
class Interface:
    """A node's attachment point: name, IP, on-link prefix, and segment."""

    name: str
    ip: IPv4Address
    network: IPv4Network
    link: Link


class Node:
    """Base class: interfaces + routing table + send/receive machinery."""

    forwards_packets = False
    #: True when this node's :meth:`receive` provably never retains the
    #: delivered packet object (it re-emits a fresh clone or drops) — the
    #: licence for the drain loop to recycle fast-path deliveries into the
    #: packet pool.  NAT devices set it; hosts must not (application
    #: handlers may stow packets).
    consumes_packets = False
    #: The owning network's MetricsRegistry, set by ``Network.add_node`` so
    #: protocol layers above can reach it; None for standalone nodes.
    metrics = None
    #: The owning network's FlightRecorder, set by ``Network.add_node`` /
    #: ``Network.attach_flight``; None keeps recording sites to one test.
    flight = None

    def __init__(self, name: str, scheduler: Scheduler) -> None:
        self.name = name
        self.scheduler = scheduler
        self.interfaces: Dict[str, Interface] = {}
        self.routing = RoutingTable()
        self._protocol_handlers: Dict[IpProtocol, Callable[[Packet], None]] = {}
        #: Forwarding closures: destination IP (as its raw 32-bit int —
        #: int keys probe with C-level hashing, IPv4Address keys pay a
        #: Python-level ``__hash__`` call) -> (link, next_hop) resolved once
        #: per (destination, routing-table version); see :meth:`_emit`.
        self._fwd_cache: Dict[int, tuple] = {}
        self._fwd_version = -1
        #: Raw int values of IPs this node owns, for the O(1) local-delivery
        #: test (``packet.dst.ip._value in self._local_ips``).  Kept in sync
        #: by :meth:`add_interface` (interfaces are never removed).
        self._local_ips: set = set()
        #: Per-protocol handlers as a dense list indexed by
        #: ``IpProtocol.wire_index`` — the hot mirror of
        #: ``_protocol_handlers`` (same objects, cheaper probe).
        self._handlers_by_index: List = [None] * len(IpProtocol)
        #: Optional per-protocol dispatch resolvers (see
        #: :meth:`resolve_dispatch`); transport stacks install one to bind
        #: drain-loop deliveries straight onto their sockets.
        self._dispatch_resolvers: List = [None] * len(IpProtocol)
        #: Local-delivery epoch.  Every cached direct-dispatch entry (see
        #: ``Link._dispatch``) records the version it was resolved under and
        #: is dead the moment they differ, so anything that can change where
        #: a locally-addressed packet lands — handler (un)registration,
        #: stack attach/detach, socket bind/close, a new interface — must
        #: bump this.
        self._delivery_version = 0
        #: Arrival-link -> interface (first interface wins, matching the
        #: historical scan order); NAT devices classify every received
        #: packet by arrival interface.
        self._iface_by_link: Dict[Link, Interface] = {}
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # -- topology wiring ---------------------------------------------------

    def add_interface(self, name: str, ip, network, link: Link) -> Interface:
        """Attach an interface and install the connected (on-link) route."""
        if name in self.interfaces:
            raise ValueError(f"{self.name}: duplicate interface {name!r}")
        interface = Interface(
            name=name, ip=IPv4Address(ip), network=IPv4Network(network), link=link
        )
        self.interfaces[name] = interface
        self._local_ips.add(interface.ip._value)
        self._iface_by_link.setdefault(link, interface)
        link.attach(self, interface.ip)
        self.routing.add(interface.network, name, next_hop=None)
        self._delivery_version += 1
        return interface

    def interface_for(self, ip) -> Optional[Interface]:
        """The interface owning exactly *ip*, if any."""
        address = IPv4Address(ip)
        for interface in self.interfaces.values():
            if interface.ip == address:
                return interface
        return None

    @property
    def addresses(self) -> List[IPv4Address]:
        return [i.ip for i in self.interfaces.values()]

    def owns_address(self, ip) -> bool:
        if type(ip) is IPv4Address:
            return ip._value in self._local_ips
        return IPv4Address(ip)._value in self._local_ips

    # -- protocol handlers ---------------------------------------------------

    def register_protocol(
        self,
        proto: IpProtocol,
        handler: Callable[[Packet], None],
        resolver: Optional[Callable] = None,
    ) -> None:
        """Register the local delivery handler for one transport protocol.

        Transport stacks call this once at attach time; re-registration
        replaces the handler (used by tests to interpose observers).

        *resolver*, if given, is ``resolver(dst) -> (deliver, consuming)``:
        a finer-grained dispatch hook the drain loop uses to deliver
        straight into the destination socket (see :meth:`resolve_dispatch`).
        """
        self._protocol_handlers[proto] = handler
        self._handlers_by_index[proto.wire_index] = handler
        self._dispatch_resolvers[proto.wire_index] = resolver
        self._delivery_version += 1

    def unregister_protocol(self, proto: IpProtocol) -> None:
        """Remove the handler (and resolver) for *proto*; packets for it now
        drop on the local-delivery path, exactly as if it was never bound."""
        self._protocol_handlers.pop(proto, None)
        self._handlers_by_index[proto.wire_index] = None
        self._dispatch_resolvers[proto.wire_index] = None
        self._delivery_version += 1

    def resolve_dispatch(self, proto: IpProtocol, dst) -> tuple:
        """Resolve the direct-dispatch target for local (proto, dst) traffic.

        Returns ``(deliver, consuming)``: *deliver* is the callable the
        drain loop invokes instead of :meth:`receive` (None forces the slow
        path), and *consuming* is True only when the delivery provably does
        not retain the packet object, licensing pool recycling.  Entries
        derived from this answer are validated against
        :attr:`_delivery_version` on every use, so a stale binding can never
        deliver — it falls back to :meth:`receive`.
        """
        resolver = self._dispatch_resolvers[proto.wire_index]
        if resolver is not None:
            return resolver(dst)
        handler = self._handlers_by_index[proto.wire_index]
        if handler is None:
            return None, False
        # Generic handler: saves the receive() trampoline but never recycles
        # (the handler may legitimately stow the packet).
        return handler, False

    # -- data path -----------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Originate *packet* from this node, routing by destination IP.

        Loopback (destination is one of our own addresses) is delivered
        immediately via the scheduler, preserving async semantics.
        Returns True if the packet was handed to a link (or looped back).
        """
        dst_value = packet.dst.ip._value
        if dst_value in self._local_ips:
            self.scheduler.call_later(0.0, self.deliver_local, packet)
            return True
        # ``_emit`` with the forwarding-closure hit inlined (send is once per
        # originated packet); miss and invalidation fall through to ``_emit``.
        if self._fwd_version == self.routing.version:
            closure = self._fwd_cache.get(dst_value)
            if closure is not None:
                return closure[0].transmit(packet, self, closure[1])
        return self._emit(packet)

    def _emit(self, packet: Packet) -> bool:
        """Route and transmit without the local-delivery check.

        The (link, next_hop) pair for each destination is resolved through
        the routing table once and memoised as a forwarding closure; the
        cache is keyed on ``RoutingTable.version`` so any route add/remove
        (topology change, gateway install, fault rewiring) drops every
        closure at the next emit.
        """
        dst_ip = packet.dst.ip
        if self._fwd_version != self.routing.version:
            self._fwd_cache.clear()
            self._fwd_version = self.routing.version
            closure = None
        else:
            closure = self._fwd_cache.get(dst_ip._value)
        if closure is None:
            route = self.routing.try_lookup(dst_ip)
            if route is None:
                self.packets_dropped += 1
                return False
            link = self.interfaces[route.interface].link
            next_hop = route.next_hop if route.next_hop is not None else dst_ip
            closure = (link, next_hop)
            self._fwd_cache[dst_ip._value] = closure
        return closure[0].transmit(packet, self, closure[1])

    def receive(self, packet: Packet, link: Link) -> None:
        """Entry point for packets arriving from a link."""
        self.packets_received += 1
        if packet.dst.ip._value in self._local_ips:
            # deliver_local, inlined: one packet in every NAT-echo round trip
            # terminates here, and the extra frame is measurable.
            handler = self._handlers_by_index[packet.proto.wire_index]
            if handler is None:
                self.packets_dropped += 1
            else:
                handler(packet)
            return
        if not self.forwards_packets:
            self.packets_dropped += 1
            return
        self.forward(packet, link)

    def deliver_local(self, packet: Packet) -> None:
        """Hand a locally-addressed packet to the protocol handler."""
        handler = self._handlers_by_index[packet.proto.wire_index]
        if handler is None:
            self.packets_dropped += 1
            return
        handler(packet)

    def forward(self, packet: Packet, in_link: Link) -> None:
        """Transit forwarding (routers only); TTL-guarded."""
        if packet.ttl <= 1:
            self.packets_dropped += 1
            return
        forwarded = packet.copy()
        forwarded.ttl = packet.ttl - 1
        if self._emit(forwarded):
            self.packets_forwarded += 1
        else:
            self.packets_dropped += 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, ifaces={list(self.interfaces)})"


class Host(Node):
    """An end host: terminates traffic, never forwards.

    Transport stacks (UDP/TCP) attach themselves via
    :meth:`Node.register_protocol`; see :class:`repro.transport.stack.HostStack`.
    """

    forwards_packets = False

    @property
    def primary_ip(self) -> IPv4Address:
        """The IP of the first interface (hosts usually have exactly one)."""
        if not self.interfaces:
            raise RoutingError(f"host {self.name} has no interfaces")
        return next(iter(self.interfaces.values())).ip

    def set_default_gateway(self, gateway_ip, interface: Optional[str] = None) -> Route:
        """Install the default route via *gateway_ip*.

        If *interface* is omitted the gateway must be on-link of exactly one
        interface.
        """
        gateway = IPv4Address(gateway_ip)
        if interface is None:
            candidates = [
                i.name for i in self.interfaces.values() if gateway in i.network
            ]
            if len(candidates) != 1:
                raise RoutingError(
                    f"{self.name}: cannot infer interface for gateway {gateway} "
                    f"(candidates: {candidates})"
                )
            interface = candidates[0]
        return self.routing.add_default(interface, gateway)


class Router(Node):
    """A plain (non-translating) router."""

    forwards_packets = True
