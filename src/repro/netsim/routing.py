"""Longest-prefix-match routing tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.util.errors import RoutingError


@dataclass(frozen=True)
class Route:
    """One forwarding entry.

    Attributes:
        prefix: destination prefix this route covers.
        interface: name of the local interface to send out of.
        next_hop: gateway IP on that interface's segment, or None when the
            destination is directly on-link (deliver to the destination IP
            itself).
    """

    prefix: IPv4Network
    interface: str
    next_hop: Optional[IPv4Address] = None


class RoutingTable:
    """A list of routes with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._routes: List[Route] = []
        #: Bumped on every add/remove; nodes key their per-destination
        #: forwarding caches on this so a topology change invalidates every
        #: cached routing decision without a subscription mechanism.
        self.version = 0

    def add(self, prefix, interface: str, next_hop=None) -> Route:
        """Install a route; most-specific prefix wins at lookup time."""
        route = Route(
            prefix=IPv4Network(prefix),
            interface=interface,
            next_hop=IPv4Address(next_hop) if next_hop is not None else None,
        )
        self._routes.append(route)
        self._routes.sort(key=lambda r: r.prefix.prefix_len, reverse=True)
        self.version += 1
        return route

    def add_default(self, interface: str, next_hop) -> Route:
        """Install the 0.0.0.0/0 default route via *next_hop*."""
        return self.add("0.0.0.0/0", interface, next_hop)

    def remove(self, prefix) -> None:
        target = IPv4Network(prefix)
        self._routes = [r for r in self._routes if r.prefix != target]
        self.version += 1

    def lookup(self, destination) -> Route:
        """Return the most specific matching route.

        Raises RoutingError if nothing matches (no default route installed).
        """
        address = IPv4Address(destination)
        for route in self._routes:
            if address in route.prefix:
                return route
        raise RoutingError(f"no route to {address}")

    def try_lookup(self, destination) -> Optional[Route]:
        """Like :meth:`lookup` but returns None instead of raising."""
        try:
            return self.lookup(destination)
        except RoutingError:
            return None

    @property
    def routes(self) -> List[Route]:
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
