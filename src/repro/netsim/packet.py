"""Packet model: IP header fields plus UDP / TCP / ICMP transport layers.

A :class:`Packet` is a mutable value object (NATs rewrite its endpoints in
place on copies).  TCP segments carry flags/seq/ack so the transport layer in
:mod:`repro.transport.tcp` can implement the RFC 793 subset the paper's §4
depends on, including simultaneous open.  ICMP is modelled only as the error
messages a NAT may emit toward an unsolicited SYN (paper §5.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.addresses import Endpoint

DEFAULT_TTL = 64

_packet_ids = itertools.count(1)

#: Bound C-level allocator for fresh packet ids — hot constructors (NAT
#: rewrites, UDP sends) call this instead of ``next(_packet_ids)`` to skip
#: one builtin dispatch per packet.
next_packet_id = _packet_ids.__next__


class _RecycledField:
    """Poison value installed on a released Packet's fields in pool debug
    mode: any substantive use — attribute access, length, bytes conversion,
    comparison, iteration — raises immediately, so a stale holder fails loud
    instead of silently reading another flow's data."""

    __slots__ = ()

    def _boom(self, *args, **kwargs):
        raise RuntimeError(
            "stale reference to a recycled Packet: the drain loop returned "
            "this object to the pool. Retain Packet.stow() (a defensive "
            "copy), not the delivered packet itself."
        )

    __getattr__ = _boom
    __len__ = _boom
    __bytes__ = _boom
    __iter__ = _boom
    __eq__ = _boom
    __str__ = _boom

    def __repr__(self) -> str:  # kept printable so debuggers survive
        return "<recycled>"


_RECYCLED = _RecycledField()


class PacketPool:
    """Free-list recycler for hot-path Packets.

    Only the scheduler's batched drain loop releases packets, and only for
    deliveries that provably consume them: UDP socket dispatch (the callback
    receives ``(payload, src)``, both immutable and safe to retain) and
    nodes whose class declares ``consumes_packets = True`` (NAT devices —
    their receive path always emits a fresh clone and never stows the
    original).  Packets handed to generic protocol handlers are *never*
    recycled, so application code that stows a delivered packet keeps a
    valid object; code that must retain one across deliveries should take
    :meth:`Packet.stow` anyway, which is recycle-proof by construction.

    Every release bumps the packet's generation stamp (:attr:`Packet.gen`),
    so a holder that snapshots ``gen`` can always detect recycling; with
    :attr:`debug_poison` on, release additionally poisons the payload and
    endpoint fields so any use of a stale reference raises (the identity and
    safety suites run in this mode).

    ``disable()`` empties the free list, which makes the acquire fast path
    (``free.pop() if free else object.__new__``) collapse to the plain
    allocation — pooled and unpooled runs are byte-identical on every
    observable (packet ids still come from the global counter on acquire).
    """

    __slots__ = ("enabled", "debug_poison", "max_free", "released", "_free")

    def __init__(self, max_free: int = 4096) -> None:
        self.enabled = True
        self.debug_poison = False
        #: Soft bound on the free list: the drain loop stops releasing for
        #: the rest of a batch once the list reaches this size.
        self.max_free = max_free
        #: Total packets returned to the pool (obs counter).
        self.released = 0
        self._free: list = []

    def disable(self) -> None:
        """Turn recycling off and drop the free list (identity tests)."""
        self.enabled = False
        self._free.clear()

    def enable(self) -> None:
        self.enabled = True

    @property
    def free(self) -> int:
        """Packets currently waiting for reuse."""
        return len(self._free)

    def release(self, packet: "Packet") -> None:
        """Return *packet* to the pool; the drain loop inlines this, but the
        safety tests exercise it directly."""
        if not self.enabled or len(self._free) >= self.max_free:
            return
        if self.debug_poison:
            packet.src = _RECYCLED
            packet.dst = _RECYCLED
            packet.payload = _RECYCLED
            packet.tcp = None
            packet.icmp = None
        packet.gen += 1
        self.released += 1
        self._free.append(packet)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "free": len(self._free),
            "released": self.released,
        }


#: Process-wide pool instance; hot constructors read ``PACKET_POOL._free``.
PACKET_POOL = PacketPool()
_pool_free = PACKET_POOL._free


class IpProtocol(enum.Enum):
    """Transport protocol carried by a packet.

    Each member additionally carries two plain instance attributes set right
    after the class body (enum members accept them):

    - ``wire_index``: a small dense int (0..2) used to index per-protocol
      lists on hot paths — ``list[proto.wire_index]`` costs one C-level
      attribute read plus a C-level list index, where ``dict[proto]`` pays a
      Python-level ``Enum.__hash__`` call per probe.
    - ``header_bytes``: the on-wire header-size estimate ``Packet.size``
      adds to the payload length.
    """

    UDP = "udp"
    TCP = "tcp"
    ICMP = "icmp"


for _index, _member in enumerate(IpProtocol):
    _member.wire_index = _index
IpProtocol.UDP.header_bytes = 28
IpProtocol.TCP.header_bytes = 40
IpProtocol.ICMP.header_bytes = 36


class TcpFlags(enum.IntFlag):
    """TCP header flags (subset used by the state machine)."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    ACK = 0x10

    def describe(self) -> str:
        names = [flag.name for flag in (TcpFlags.SYN, TcpFlags.ACK, TcpFlags.FIN, TcpFlags.RST) if self & flag]
        return "+".join(names) if names else "none"


@dataclass(slots=True)
class TcpHeader:
    """TCP segment header: flags and 32-bit sequence/ack numbers.

    Treated as immutable once attached to a packet: :meth:`Packet.copy`
    shares the header object between the original and the copy, so in-place
    header mutation would alias across NAT hops.  Build a fresh header (or
    ``dataclasses.replace``) instead of writing fields.
    """

    flags: TcpFlags = TcpFlags.NONE
    seq: int = 0
    ack: int = 0

    def has(self, flag: TcpFlags) -> bool:
        return bool(self.flags & flag)

    @property
    def is_syn_only(self) -> bool:
        """A "raw" SYN: connection-opening segment with no ACK (paper §4.4)."""
        return self.has(TcpFlags.SYN) and not self.has(TcpFlags.ACK)

    @property
    def is_syn_ack(self) -> bool:
        return self.has(TcpFlags.SYN) and self.has(TcpFlags.ACK)

    @property
    def is_rst(self) -> bool:
        return self.has(TcpFlags.RST)


class IcmpType(enum.Enum):
    """ICMP message kinds the simulator can emit."""

    DEST_UNREACHABLE = "dest-unreachable"
    PORT_UNREACHABLE = "port-unreachable"
    TIME_EXCEEDED = "time-exceeded"
    ADMIN_PROHIBITED = "admin-prohibited"


@dataclass(slots=True)
class IcmpError:
    """An ICMP error, carrying the offending packet's session identifiers.

    ``original_src``/``original_dst`` identify the transport session of the
    packet that provoked the error (as real ICMP embeds the original header),
    so the TCP stack can route the error to the right socket.  Like
    :class:`TcpHeader`, the body is shared by :meth:`Packet.copy` and must
    not be mutated in place — translators build a fresh body.
    """

    icmp_type: IcmpType
    original_proto: IpProtocol
    original_src: Endpoint
    original_dst: Endpoint


@dataclass(slots=True)
class Packet:
    """One simulated IP packet.

    Attributes:
        proto: transport protocol.
        src / dst: transport-level session endpoints (IP + port).  For ICMP
            the port halves are 0 and :attr:`icmp` carries the session info.
        payload: opaque application bytes (UDP datagram body or TCP segment
            body).  NAT payload-mangling (§5.3) scans these bytes.
        tcp: TCP header, present iff ``proto is IpProtocol.TCP``.
        icmp: ICMP error body, present iff ``proto is IpProtocol.ICMP``.
        ttl: decremented per hop; expiry drops the packet (guards routing
            loops in malformed topologies).
        packet_id: unique per packet object, for tracing.
        flow: attempt-scoped correlation id (see :mod:`repro.obs.flight`),
            or None when no flight recorder is attached.  Stamped lazily at
            the first recorded hop and propagated through :meth:`copy`, so
            every NAT rewrite of the same original packet shares lineage.
        gen: pool generation stamp, bumped each time :data:`PACKET_POOL`
            recycles this object.  Snapshot it when retaining a delivered
            packet to detect reuse; excluded from equality and repr because
            it describes the container, not the packet.
    """

    proto: IpProtocol
    src: Endpoint
    dst: Endpoint
    payload: bytes = b""
    tcp: Optional[TcpHeader] = None
    icmp: Optional[IcmpError] = None
    ttl: int = DEFAULT_TTL
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    flow: Optional[int] = None
    gen: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.proto is IpProtocol.TCP and self.tcp is None:
            raise ValueError("TCP packet requires a TcpHeader")
        if self.proto is not IpProtocol.TCP and self.tcp is not None:
            raise ValueError(f"{self.proto} packet must not carry a TcpHeader")
        if self.proto is IpProtocol.ICMP and self.icmp is None:
            raise ValueError("ICMP packet requires an IcmpError body")

    def copy(self) -> "Packet":
        """Copy-on-write clone for NAT rewriting.

        This is the per-hop hot path (every NAT translation and router
        forward clones the packet), so it bypasses ``__init__`` — the
        original already passed ``__post_init__`` validation and the clone
        carries the same protocol invariants.  Top-level fields (``src``,
        ``dst``, ``ttl``, ``payload``) are per-clone and safe to overwrite;
        the ``tcp``/``icmp`` header objects and the payload bytes are
        *shared* and treated as immutable — a mangling NAT rebinds
        ``payload`` to new bytes, and the ICMP translator attaches a fresh
        :class:`IcmpError` rather than writing through the shared one.

        Clones come from :data:`PACKET_POOL`'s free list when one is
        available (an empty list costs a single truthiness check); every
        field is assigned below, so a recycled carcass is indistinguishable
        from a fresh allocation except for its ``gen`` stamp.
        """
        free = _pool_free
        if free:
            clone = free.pop()
        else:
            clone = object.__new__(Packet)
            clone.gen = 0
        clone.proto = self.proto
        clone.src = self.src
        clone.dst = self.dst
        clone.payload = self.payload
        clone.tcp = self.tcp
        clone.icmp = self.icmp
        clone.ttl = self.ttl
        clone.packet_id = next(_packet_ids)
        clone.flow = self.flow
        return clone

    def stow(self) -> "Packet":
        """Defensive copy for handlers that retain delivered packets.

        The drain loop may recycle a delivered packet once the delivery
        callback returns (see :class:`PacketPool`); a stowed copy is owned
        by the caller — the pool only ever reclaims packets it delivered,
        so nothing reaches into this clone behind the caller's back.
        """
        return self.copy()

    @property
    def size(self) -> int:
        """Approximate on-wire size in bytes (header estimate + payload)."""
        return self.proto.header_bytes + len(self.payload)

    def describe(self) -> str:
        """One-line human-readable summary, used by traces and logs."""
        base = f"{self.proto.value} {self.src} -> {self.dst}"
        if self.tcp is not None:
            base += f" [{self.tcp.flags.describe()} seq={self.tcp.seq} ack={self.tcp.ack}]"
        if self.icmp is not None:
            base += f" [{self.icmp.icmp_type.value}]"
        if self.payload:
            base += f" ({len(self.payload)}B)"
        return base


def udp_packet(src: Endpoint, dst: Endpoint, payload: bytes = b"") -> Packet:
    """Convenience constructor for a UDP datagram.

    Built like :meth:`Packet.copy` — pool acquire or straight into
    ``__new__`` — because the UDP send path creates one packet per datagram
    and the protocol invariants ``__post_init__`` would check (a UDP packet
    has no TCP/ICMP body) hold by construction here.
    """
    free = _pool_free
    if free:
        packet = free.pop()
    else:
        packet = object.__new__(Packet)
        packet.gen = 0
    packet.proto = IpProtocol.UDP
    packet.src = src
    packet.dst = dst
    packet.payload = payload
    packet.tcp = None
    packet.icmp = None
    packet.ttl = DEFAULT_TTL
    packet.packet_id = next(_packet_ids)
    packet.flow = None
    return packet


def tcp_packet(
    src: Endpoint,
    dst: Endpoint,
    flags: TcpFlags,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
) -> Packet:
    """Convenience constructor for a TCP segment."""
    return Packet(
        proto=IpProtocol.TCP,
        src=src,
        dst=dst,
        payload=payload,
        tcp=TcpHeader(flags=flags, seq=seq % (1 << 32), ack=ack % (1 << 32)),
    )


def icmp_error_for(offender: Packet, icmp_type: IcmpType, reporter_ip) -> Packet:
    """Build the ICMP error a middlebox sends about *offender*.

    The error travels back toward the offender's source; its ICMP body quotes
    the offending session so the sender's stack can attribute it.
    """
    return Packet(
        proto=IpProtocol.ICMP,
        src=Endpoint(reporter_ip, 0),
        dst=Endpoint(offender.src.ip, 0),
        icmp=IcmpError(
            icmp_type=icmp_type,
            original_proto=offender.proto,
            original_src=offender.src,
            original_dst=offender.dst,
        ),
    )
